"""SDC-aware fault-injection campaigns with a golden-output oracle.

PR 1 made fault injection deterministic; this module makes it *answer
the question fault injection exists to answer*: did the system produce
the right result? A faulted run that completes is not necessarily
correct — a bit flip that lands in live data silently corrupts the
output (SDC), which ``status="ok"`` never shows.

The engine runs the workload once clean and digests the final
functional memory image into a :class:`GoldenReference`; every faulted
trial is then classified against it using the standard taxonomy:

* ``masked`` — the trial completed and its output is bit-identical to
  the golden image (the fault hit dead data, or never fired);
* ``sdc`` — the trial completed but its output differs: silent data
  corruption, the case that is invisible without an oracle;
* ``detected`` — the failure surfaced (deadlock, accelerator fault,
  crash during interpretation — e.g. a flipped index load walking off
  a segment);
* ``hang`` — the cycle budget or wall-clock watchdog fired;
* ``config-error`` — the trial could not even be configured.

:func:`run_campaign` derives one deterministic seed per trial,
stratifies trials across the enabled fault sites (one site per trial,
round-robin, so per-site rates are directly comparable), and fans out
over the parallel sweep executor — the golden ``Prepared`` payload and
the pristine workload blob ship to each worker once, trials journal in
the crash-recoverable sweep-journal format (``--resume-campaign``), and
serial vs ``jobs=N`` results are bit-identical. Outcome rates carry
Wilson score confidence intervals (:func:`repro.telemetry.metrics.
wilson_interval`), with optional early stop once the SDC-rate CI is
narrower than a target. See ``docs/resilience.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.config import ConfigError
from ..sim.errors import SimulationError
from ..telemetry.metrics import wilson_interval
from .faults import FaultInjector, FaultPlan, _SITES

#: bump when the campaign report block changes incompatibly
CAMPAIGN_SCHEMA_VERSION = 1

#: the outcome taxonomy (``worker_died`` is the harness-level residue of
#: a SIGKILLed/OOMed worker whose retries were exhausted — not a verdict
#: on the simulated system, but never silently dropped either)
CAMPAIGN_OUTCOMES = ("masked", "sdc", "detected", "hang", "config-error",
                     "worker_died")

#: seed stride between trials — coprime to the supervisor's retry stride
#: (1_000_003) so trial seeds never alias retry reseeds
TRIAL_SEED_STRIDE = 6_700_417

#: plan fields that realize each fault site
SITE_RATE_FIELDS: Dict[str, Tuple[str, ...]] = {
    "mem": ("bitflip_load_rate",),
    "msg": ("message_drop_rate", "message_delay_rate"),
    "dram": ("dram_stall_rate",),
    "accel": ("accel_fault_rate",),
    "none": (),
}

_FAILURE_OUTCOME = {
    "deadlock": "detected",
    "fault": "detected",
    "error": "detected",
    "interrupted": "detected",
    "timeout": "hang",
    "config-error": "config-error",
}


class CampaignError(RuntimeError):
    """The campaign itself cannot run (e.g. the golden run failed)."""


# -- golden reference -------------------------------------------------------

def memory_digests(memory) -> Dict[str, str]:
    """Per-segment SHA-256 of a :class:`SimMemory`'s functional data,
    keyed ``name@base`` — the bit-exact oracle a trial's final image is
    compared against."""
    digests: Dict[str, str] = {}
    for segment in memory.segments:
        key = f"{segment.name}@{segment.base:#x}"
        digests[key] = hashlib.sha256(
            segment.data.tobytes()).hexdigest()
    return digests


def _combined_digest(digests: Dict[str, str]) -> str:
    canonical = json.dumps(sorted(digests.items()))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class GoldenReference:
    """The clean run's functional output image, digested."""

    #: ``name@base`` -> SHA-256 of the segment's final data
    digests: Dict[str, str]
    #: single digest over all segments (report/provenance handle)
    digest: str
    #: clean-run timing, for reports and the trial hang budget
    cycles: int
    instructions: int


def corrupted_segments(golden: Dict[str, str],
                       image: Dict[str, str]) -> Tuple[str, ...]:
    """Segment keys whose digest differs from the golden reference (a
    layout mismatch reports the offending keys too — both are SDC)."""
    wrong = [key for key, digest in sorted(image.items())
             if golden.get(key) != digest]
    wrong.extend(sorted(set(golden) - set(image)))
    return tuple(wrong)


# -- per-trial plans --------------------------------------------------------

def site_rate(plan: FaultPlan, site: str) -> float:
    """The plan's combined fault probability at one site."""
    return sum(getattr(plan, name) for name in SITE_RATE_FIELDS[site])


def trial_seed(base_seed: int, trial: int) -> int:
    """Deterministic per-trial seed; printable, so ``repro inject
    --seed`` replays any trial exactly."""
    return base_seed + TRIAL_SEED_STRIDE * (trial + 1)


def stratified_plan(template: FaultPlan, site: str,
                    seed: int) -> FaultPlan:
    """The template restricted to one fault site: every other site's
    rates are zeroed, so each trial measures exactly one injection
    mechanism and per-site outcome rates are directly comparable."""
    if site not in SITE_RATE_FIELDS:
        raise ValueError(f"unknown fault site {site!r}; options: "
                         f"{sorted(SITE_RATE_FIELDS)}")
    overrides: Dict[str, object] = {"seed": seed}
    for other, fields in SITE_RATE_FIELDS.items():
        if other == site:
            continue
        for name in fields:
            overrides[name] = 0.0
    return replace(template, **overrides)


# -- trial execution (runs inside sweep workers) ----------------------------

@dataclass
class CampaignPayload:
    """Everything a worker needs, shipped once per worker process via
    the sweep executor's pool initializer (the same channel a plain
    sweep ships its ``Prepared`` through).

    ``blob`` is the *pristine* workload — ``(function, args, memory)``
    pickled before the golden run mutated the memory — so a mem-site
    trial can re-interpret from clean state with its injector attached.
    Timing-site trials (msg/dram/accel) cannot corrupt functional data
    and reuse the golden ``prepared`` directly: re-timing cached traces
    is exactly the compile-once-simulate-many contract.
    """

    blob: bytes
    prepared: object          # the golden Prepared
    golden_digests: Dict[str, str]


def build_accelerator_farm(kinds: Sequence[str]):
    """Fresh AcceleratorFarm covering ``kinds`` (farms accumulate
    runtime state, so every trial rebuilds its own); None when empty."""
    if not kinds:
        return None
    from ..sim.accelerator.library import DESIGN_FACTORIES
    from ..sim.accelerator.tile import AcceleratorFarm
    farm = AcceleratorFarm()
    for kind in kinds:
        if kind in DESIGN_FACTORIES:
            farm.add_default(kind)
    return farm if farm.tiles else None


def fault_log_digest(log: Sequence) -> str:
    """Stable fingerprint of a fault log (tuple of FaultRecords) — the
    serial-vs-parallel portability property in one comparable string."""
    canonical = repr(tuple(record.as_tuple() for record in log))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def execute_trial(payload: CampaignPayload, plan: FaultPlan,
                  cfg: Dict) -> "SweepPoint":
    """Run one faulted trial and classify it against the golden image.

    Returns a :class:`~repro.harness.sweeps.SweepPoint` whose
    ``outcome`` is the taxonomy label and whose ``error`` field packs
    the trial detail as canonical JSON — the shape the sweep journal
    round-trips bit-identically.
    """
    from ..harness.runner import classify_failure, prepare, simulate
    from ..harness.sweeps import SweepPoint

    plan.validate()
    injector = FaultInjector(plan) if plan.enabled else None
    stats = None
    outcome = "masked"
    error = ""
    corrupted: Tuple[str, ...] = ()
    try:
        if plan.bitflip_load_rate > 0.0:
            # bit flips fire during functional interpretation, so the
            # trial re-interprets the pristine workload with the
            # injector attached (the one path that must not reuse the
            # golden traces)
            function, args, memory = pickle.loads(
                zlib.decompress(payload.blob))
            prepared = prepare(function, args,
                               num_tiles=cfg["num_tiles"],
                               memory=memory, injector=injector)
        else:
            prepared = payload.prepared
            memory = prepared.memory
        stats = simulate(
            prepared.function, [], prepared=prepared,
            core=cfg.get("core"), num_tiles=cfg["num_tiles"],
            hierarchy=cfg.get("hierarchy"),
            accelerators=build_accelerator_farm(
                cfg.get("accel_kinds") or ()),
            max_cycles=cfg["max_cycles"],
            wall_clock_limit=cfg.get("wall_clock_limit"),
            injector=injector)
    except (SimulationError, ConfigError) as exc:
        outcome = _FAILURE_OUTCOME.get(classify_failure(exc), "detected")
        error = str(exc)
    except Exception as exc:  # noqa: BLE001 — a flipped index load can
        # crash interpretation with workload-level errors (unmapped
        # address, bad shape); in a campaign any crash is a detection
        outcome = "detected"
        error = f"{type(exc).__name__}: {exc}"
    else:
        corrupted = corrupted_segments(payload.golden_digests,
                                       memory_digests(memory))
        outcome = "sdc" if corrupted else "masked"
    log = tuple(injector.log) if injector is not None else ()
    detail = json.dumps({
        "corrupted": list(corrupted),
        "error": error,
        "fault_digest": fault_log_digest(log),
        "faults": len(log),
    }, sort_keys=True)
    return SweepPoint({}, stats, outcome=outcome, error=detail)


def _campaign_point_runner(parameters: Dict, spec: Dict,
                           payload: CampaignPayload):
    """The sweep executor's ``point_runner`` hook for campaign trials —
    module-level so worker processes resolve it by reference."""
    point = execute_trial(payload, spec["campaign_plan"],
                          spec["campaign"])
    point.parameters = parameters
    return point


# -- campaign orchestration -------------------------------------------------

@dataclass(frozen=True)
class TrialOutcome:
    """One classified trial."""

    trial: int
    site: str
    seed: int
    outcome: str
    error: str = ""
    cycles: Optional[int] = None
    faults: int = 0
    fault_digest: str = ""
    corrupted: Tuple[str, ...] = ()


@dataclass
class CampaignResult:
    """Everything :func:`run_campaign` measured, plus the report."""

    workload: str
    plan: FaultPlan
    sites: Tuple[str, ...]
    requested_trials: int
    trials: List[TrialOutcome]
    golden: GoldenReference
    early_stopped: bool = False
    confidence_z: float = 1.96

    def outcomes(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for trial in self.trials:
            counts[trial.outcome] = counts.get(trial.outcome, 0) + 1
        return counts

    def sdc_trials(self) -> List[TrialOutcome]:
        return [t for t in self.trials if t.outcome == "sdc"]

    def _interval(self, count: int, total: int,
                  deterministic: bool) -> Tuple[float, float]:
        if total == 0:
            return (0.0, 1.0)
        rate = count / total
        if deterministic:
            # no randomness at this site (all rates zero): the measured
            # rate is exact, the interval has zero width
            return (rate, rate)
        return wilson_interval(count, total, z=self.confidence_z)

    def report(self) -> dict:
        """The schema-versioned ``campaign`` report block — pure
        deterministic JSON (no timestamps), so a rerun of the same
        campaign spec is byte-identical."""
        plan = self.plan
        per_site: Dict[str, dict] = {}
        for site in self.sites:
            site_trials = [t for t in self.trials if t.site == site]
            outcomes: Dict[str, int] = {}
            for t in site_trials:
                outcomes[t.outcome] = outcomes.get(t.outcome, 0) + 1
            sdc_count = outcomes.get("sdc", 0)
            total = len(site_trials)
            low, high = self._interval(
                sdc_count, total, deterministic=site_rate(plan, site) <= 0)
            per_site[site] = {
                "trials": total,
                "outcomes": outcomes,
                "sdc": {
                    "count": sdc_count,
                    "rate": sdc_count / total if total else 0.0,
                    "ci": [low, high],
                },
            }
        total = len(self.trials)
        sdc = self.sdc_trials()
        deterministic = all(site_rate(plan, s) <= 0 for s in self.sites)
        low, high = self._interval(len(sdc), total, deterministic)
        return {
            "schema_version": CAMPAIGN_SCHEMA_VERSION,
            "workload": self.workload,
            "seed": plan.seed,
            "requested_trials": self.requested_trials,
            "trials": total,
            "sites": list(self.sites),
            "plan": {
                "seed": plan.seed,
                "bitflip_load_rate": plan.bitflip_load_rate,
                "message_drop_rate": plan.message_drop_rate,
                "message_delay_rate": plan.message_delay_rate,
                "dram_stall_rate": plan.dram_stall_rate,
                "accel_fault_rate": plan.accel_fault_rate,
            },
            "confidence_z": self.confidence_z,
            "early_stopped": self.early_stopped,
            "golden": {
                "digest": self.golden.digest,
                "cycles": self.golden.cycles,
                "instructions": self.golden.instructions,
                "segments": len(self.golden.digests),
            },
            "outcomes": self.outcomes(),
            "per_site": per_site,
            "sdc": {
                "count": len(sdc),
                "rate": len(sdc) / total if total else 0.0,
                "ci": [low, high],
                "trials": [
                    {
                        "trial": t.trial,
                        "site": t.site,
                        "seed": t.seed,
                        "faults": t.faults,
                        "corrupted": list(t.corrupted),
                    }
                    for t in sdc
                ],
            },
        }


def _sdc_ci_width(points: List, z: float) -> float:
    completed = [p for p in points if p is not None]
    if not completed:
        return 1.0
    sdc = sum(1 for p in completed if p.outcome == "sdc")
    low, high = wilson_interval(sdc, len(completed), z=z)
    return high - low


def run_campaign(kernel, args, *, plan: FaultPlan, trials: int,
                 memory=None, sites: Optional[Sequence[str]] = None,
                 core=None, num_tiles: int = 1, hierarchy=None,
                 accel_kinds: Sequence[str] = (),
                 max_cycles: Optional[int] = None,
                 wall_clock_limit: Optional[float] = None,
                 hang_factor: int = 64,
                 jobs: int = 1,
                 journal_path: Optional[str] = None,
                 resume: bool = False,
                 sdc_ci_target: Optional[float] = None,
                 ci_check_every: int = 16,
                 prep_cache=None,
                 workload_name: str = "",
                 confidence_z: float = 1.96) -> CampaignResult:
    """Run a stratified fault-injection campaign against a golden oracle.

    ``plan`` is the template: its per-site rates define the fault model
    and its seed anchors the campaign. Trial ``i`` targets site
    ``sites[i % len(sites)]`` under ``stratified_plan(plan, site,
    trial_seed(plan.seed, i))`` — one site, one fresh deterministic
    seed per trial, so any SDC replays exactly via ``repro inject
    --seed <trial seed>`` with that site's rate.

    ``sites`` defaults to every site the template enables; with no
    enabled site the campaign degenerates to deterministic clean reruns
    (site ``"none"``, 100% masked, zero-width CI) — the oracle's
    self-test. ``max_cycles`` defaults to ``hang_factor`` × the golden
    run's cycle count, so a live-locked trial classifies as ``hang``
    instead of burning the full default budget.

    ``jobs`` fans trials out over the sweep executor's worker pool
    (bit-identical to serial); ``journal_path``/``resume`` journal
    completed trials in the sweep-journal format and skip them on
    re-run; ``sdc_ci_target`` stops early once the aggregate SDC-rate
    Wilson interval is narrower than the target, checked every
    ``ci_check_every`` trials (a fixed stride, so early stop never
    breaks serial/parallel identity). ``prep_cache`` makes the golden
    prepare a replay.
    """
    from ..harness.runner import (
        DEFAULT_MAX_CYCLES, classify_failure, prepare, simulate,
    )
    from ..harness.sweeps import _execute_sweep

    plan.validate()
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if sites is not None:
        sites = tuple(sites)
        for site in sites:
            if site not in SITE_RATE_FIELDS:
                raise ValueError(f"unknown fault site {site!r}; options: "
                                 f"{sorted(SITE_RATE_FIELDS)}")
    else:
        sites = tuple(s for s in _SITES if site_rate(plan, s) > 0.0)
    if not sites:
        sites = ("none",)

    from ..frontend.compiler import compile_kernel
    from ..ir.function import Function
    from ..harness.runner import _infer_memory
    func = kernel if isinstance(kernel, Function) else compile_kernel(kernel)
    mem = memory if memory is not None else _infer_memory(args)
    # snapshot the pristine workload BEFORE the golden run mutates the
    # memory — mem-site trials re-interpret from this blob
    blob = zlib.compress(pickle.dumps((func, args, mem), protocol=4), 6)

    from ..harness.status import STATUS
    try:
        prepared = prepare(func, args, num_tiles=num_tiles, memory=mem,
                           cache=prep_cache)
        golden_stats = simulate(
            func, [], prepared=prepared, core=core, num_tiles=num_tiles,
            hierarchy=hierarchy,
            accelerators=build_accelerator_farm(accel_kinds),
            max_cycles=max_cycles or DEFAULT_MAX_CYCLES,
            wall_clock_limit=wall_clock_limit)
    except (SimulationError, ConfigError) as exc:
        raise CampaignError(
            f"golden run failed ({classify_failure(exc)}): {exc}; a "
            f"campaign needs a clean baseline to classify against") \
            from exc
    digests = memory_digests(mem)
    golden = GoldenReference(digests=digests,
                             digest=_combined_digest(digests),
                             cycles=golden_stats.cycles,
                             instructions=golden_stats.instructions)
    STATUS.info(f"campaign golden run: {golden.cycles} cycles, "
                f"{len(digests)} segment(s), digest {golden.digest[:12]}")

    trial_budget = max_cycles
    if trial_budget is None:
        trial_budget = max(golden.cycles * hang_factor,
                           golden.cycles + 10_000)
    cfg = {
        "num_tiles": num_tiles,
        "core": core,
        "hierarchy": hierarchy,
        "max_cycles": trial_budget,
        "wall_clock_limit": wall_clock_limit,
        "accel_kinds": tuple(accel_kinds),
    }
    tasks = []
    for index in range(trials):
        site = sites[index % len(sites)]
        trial_plan = stratified_plan(plan, site,
                                     trial_seed(plan.seed, index))
        tasks.append((
            {"trial": index, "site": site, "seed": trial_plan.seed},
            {"point_runner": _campaign_point_runner,
             "campaign_plan": trial_plan, "campaign": cfg},
        ))

    payload = CampaignPayload(blob=blob, prepared=prepared,
                              golden_digests=digests)
    if journal_path and not resume and os.path.exists(journal_path):
        # a fresh campaign over a stale journal must not resurrect old
        # trials; --resume-campaign is the explicit opt-in
        os.remove(journal_path)

    points: List = []
    early_stopped = False
    position = 0
    while position < len(tasks):
        end = len(tasks)
        if sdc_ci_target is not None:
            end = min(len(tasks), position + ci_check_every)
        if journal_path:
            # progressive extension: the journal restores the prefix
            # bit-identically, so global trial indices stay stable
            result = _execute_sweep(
                payload, tasks[:end], "record", jobs,
                journal_path=journal_path,
                resume=resume or position > 0)
            points = list(result.points)
        else:
            result = _execute_sweep(payload, tasks[position:end],
                                    "record", jobs)
            points.extend(result.points)
        position = end
        if sdc_ci_target is not None and position < len(tasks):
            width = _sdc_ci_width(points, confidence_z)
            STATUS.verbose(f"campaign: {position}/{len(tasks)} trial(s), "
                           f"SDC CI width {width:.3f} "
                           f"(target {sdc_ci_target})")
            if width < sdc_ci_target:
                early_stopped = True
                break

    trial_outcomes: List[TrialOutcome] = []
    for (parameters, _), point in zip(tasks, points):
        if point is None:
            continue
        try:
            detail = json.loads(point.error) if point.error else {}
        except ValueError:
            detail = {"error": point.error}
        trial_outcomes.append(TrialOutcome(
            trial=parameters["trial"], site=parameters["site"],
            seed=parameters["seed"], outcome=point.outcome,
            error=detail.get("error", ""), cycles=point.cycles,
            faults=int(detail.get("faults", 0)),
            fault_digest=detail.get("fault_digest", ""),
            corrupted=tuple(detail.get("corrupted", ()))))
    return CampaignResult(
        workload=workload_name or func.name, plan=plan, sites=sites,
        requested_trials=trials, trials=trial_outcomes, golden=golden,
        early_stopped=early_stopped, confidence_z=confidence_z)


# -- report validation ------------------------------------------------------

def validate_campaign_report(document: dict) -> int:
    """Structural + conservation checks over a ``campaign`` report
    block; returns the trial count or raises ``ValueError``.

    Conservation: outcome counts sum to trials, per-site trials and
    per-site outcome counts partition them, SDC counts agree between
    the aggregate block, the taxonomy counter, the per-site blocks and
    the listed trials, and every rate sits inside its own CI (which
    sits inside [0, 1]).
    """
    if not isinstance(document, dict):
        raise ValueError("campaign report must be a dict")
    version = document.get("schema_version")
    if version != CAMPAIGN_SCHEMA_VERSION:
        raise ValueError(f"unsupported campaign schema version "
                         f"{version!r} (supported: "
                         f"{CAMPAIGN_SCHEMA_VERSION})")
    for key in ("workload", "trials", "sites", "outcomes", "per_site",
                "sdc", "golden"):
        if key not in document:
            raise ValueError(f"campaign report is missing {key!r}")
    trials = document["trials"]
    outcomes = document["outcomes"]
    unknown = set(outcomes) - set(CAMPAIGN_OUTCOMES)
    if unknown:
        raise ValueError(f"unknown outcome label(s): {sorted(unknown)}")
    if sum(outcomes.values()) != trials:
        raise ValueError(f"outcome counts sum to "
                         f"{sum(outcomes.values())}, expected {trials}")

    def check_rate_block(block: dict, where: str) -> int:
        count, rate, ci = block["count"], block["rate"], block["ci"]
        low, high = ci
        if not (0.0 <= low <= high <= 1.0):
            raise ValueError(f"{where}: CI {ci} is not an interval "
                             f"inside [0, 1]")
        if not (low - 1e-9 <= rate <= high + 1e-9):
            raise ValueError(f"{where}: rate {rate} outside its own "
                             f"CI {ci}")
        return count

    site_total = 0
    site_sdc = 0
    for site, block in document["per_site"].items():
        site_trials = block["trials"]
        site_total += site_trials
        if sum(block["outcomes"].values()) != site_trials:
            raise ValueError(f"site {site!r}: outcome counts sum to "
                             f"{sum(block['outcomes'].values())}, "
                             f"expected {site_trials}")
        unknown = set(block["outcomes"]) - set(CAMPAIGN_OUTCOMES)
        if unknown:
            raise ValueError(f"site {site!r}: unknown outcome label(s): "
                             f"{sorted(unknown)}")
        sdc_count = check_rate_block(block["sdc"], f"site {site!r} sdc")
        if sdc_count != block["outcomes"].get("sdc", 0):
            raise ValueError(f"site {site!r}: sdc count {sdc_count} "
                             f"disagrees with its outcome counter")
        site_sdc += sdc_count
    if site_total != trials:
        raise ValueError(f"per-site trial counts sum to {site_total}, "
                         f"expected {trials}")
    sdc = document["sdc"]
    sdc_count = check_rate_block(sdc, "aggregate sdc")
    if sdc_count != outcomes.get("sdc", 0):
        raise ValueError(f"aggregate sdc count {sdc_count} disagrees "
                         f"with the outcome counter "
                         f"{outcomes.get('sdc', 0)}")
    if sdc_count != site_sdc:
        raise ValueError(f"aggregate sdc count {sdc_count} disagrees "
                         f"with per-site sum {site_sdc}")
    if len(sdc.get("trials", ())) != sdc_count:
        raise ValueError(f"sdc lists {len(sdc.get('trials', ()))} "
                         f"trial(s), expected {sdc_count}")
    return trials


__all__ = [
    "CAMPAIGN_OUTCOMES", "CAMPAIGN_SCHEMA_VERSION", "CampaignError",
    "CampaignPayload", "CampaignResult", "GoldenReference",
    "TrialOutcome", "build_accelerator_farm", "corrupted_segments",
    "execute_trial", "fault_log_digest", "memory_digests",
    "run_campaign", "site_rate", "stratified_plan", "trial_seed",
    "validate_campaign_report",
]
