"""Deterministic, seeded fault injection.

A :class:`FaultPlan` declares *what can go wrong* — bit flips in
functional loads, dropped or delayed fabric messages, stalled DRAM
responses, failing accelerator invocations — as per-site rates plus an
optional active cycle window. A :class:`FaultInjector` realizes one plan
with independent per-site random streams, so the draw order in one
subsystem never perturbs another, and logs every injected fault.

Determinism contract: the simulator itself is deterministic (the event
scheduler breaks ties by insertion order), so with the same plan — same
seed included — every hook is queried in the same order and the same
faults fire at the same places. Two runs of ``run_with_faults`` with one
plan produce identical :class:`~repro.sim.statistics.SystemStats` and
identical fault logs.

Bit flips happen during trace generation (the functional phase), where
values are real; the timing simulator only sees addresses. Their
``cycle`` field therefore records the *load ordinal*, not a clock cycle.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

_SITES = ("mem", "msg", "dram", "accel")


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault: where, when, and what happened."""

    site: str      # "mem" | "msg" | "dram" | "accel"
    kind: str      # "bitflip" | "drop" | "delay" | "stall" | "fail"
    cycle: int     # clock cycle (load ordinal for site "mem")
    detail: str = ""

    def as_tuple(self) -> Tuple[str, str, int, str]:
        return (self.site, self.kind, self.cycle, self.detail)


@dataclass(frozen=True)
class FaultPlan:
    """Declarative fault model for one run. All rates are probabilities
    per opportunity (per load, per message, per DRAM request, per
    accelerator invocation); 0.0 disables a site."""

    seed: int = 0
    #: cycle window in which timing-level faults may fire
    start_cycle: int = 0
    end_cycle: Optional[int] = None
    #: functional loads: probability of flipping one bit of the value
    bitflip_load_rate: float = 0.0
    #: bits eligible for flipping in integer loads (low ``bitflip_bits``)
    bitflip_bits: int = 16
    #: fabric messages: delay by ``message_delay_cycles``, or drop outright
    message_delay_rate: float = 0.0
    message_delay_cycles: int = 32
    message_drop_rate: float = 0.0
    #: DRAM responses: extra stall cycles on top of the modeled latency
    dram_stall_rate: float = 0.0
    dram_stall_cycles: int = 256
    #: accelerator invocations: raise AcceleratorFaultError
    accel_fault_rate: float = 0.0
    #: transient faults may succeed on retry (supervisor reseeds)
    accel_fault_transient: bool = True

    def validate(self) -> None:
        for name in ("bitflip_load_rate", "message_delay_rate",
                     "message_drop_rate", "dram_stall_rate",
                     "accel_fault_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.bitflip_bits <= 0 or self.bitflip_bits > 64:
            raise ValueError(
                f"bitflip_bits must be in [1, 64], got {self.bitflip_bits}")
        if self.message_delay_cycles < 0 or self.dram_stall_cycles < 0:
            raise ValueError("fault delay/stall cycles must be >= 0")
        combined = self.message_drop_rate + self.message_delay_rate
        if combined > 1.0:
            # message_action draws once per message and carves the unit
            # interval into [drop | delay | deliver]; a sum above 1.0
            # would silently truncate the effective delay probability
            raise ValueError(
                f"message_drop_rate + message_delay_rate must not exceed "
                f"1.0 (the two outcomes share one draw per message), got "
                f"{combined}")
        if self.end_cycle is not None and self.end_cycle <= self.start_cycle:
            raise ValueError("end_cycle must exceed start_cycle")

    @property
    def enabled(self) -> bool:
        return any(getattr(self, name) > 0.0 for name in (
            "bitflip_load_rate", "message_delay_rate", "message_drop_rate",
            "dram_stall_rate", "accel_fault_rate"))

    def reseeded(self, attempt: int) -> "FaultPlan":
        """Plan for retry ``attempt``: a different seed, same fault model,
        so transient faults may land elsewhere (or nowhere)."""
        if attempt == 0:
            return self
        return replace(self, seed=self.seed + 1_000_003 * attempt)


class FaultInjector:
    """Runtime realization of a :class:`FaultPlan`.

    One injector is consulted by every wired subsystem; each site draws
    from its own seeded stream. Construct a fresh injector per run —
    stream state and the log are cumulative.
    """

    def __init__(self, plan: FaultPlan):
        plan.validate()
        self.plan = plan
        self._rngs: Dict[str, random.Random] = {
            site: random.Random(f"{plan.seed}:{site}") for site in _SITES}
        self.log: List[FaultRecord] = []
        self._load_index = 0
        #: cycle-level Tracer (attached by the harness when tracing);
        #: every recorded fault also becomes a trace instant
        self.tracer = None
        self.trace_tid = 0

    # ------------------------------------------------------------------
    def _active(self, cycle: int) -> bool:
        plan = self.plan
        if cycle < plan.start_cycle:
            return False
        return plan.end_cycle is None or cycle < plan.end_cycle

    def _record(self, site: str, kind: str, cycle: int, detail: str) -> None:
        self.log.append(FaultRecord(site, kind, cycle, detail))
        if self.tracer is not None:
            self.tracer.instant("fault", f"{site}.{kind}", cycle,
                                self.trace_tid, {"detail": detail})

    # -- functional loads (trace generation) ----------------------------
    def corrupt_load(self, address: int, value):
        """Possibly flip one bit of a functionally loaded value.

        Bit flips happen in the functional phase, which has no clock, so
        the plan's ``start_cycle``/``end_cycle`` window applies over the
        *load ordinal* — the same quantity the fault record's ``cycle``
        field reports.
        """
        index = self._load_index
        self._load_index += 1
        plan = self.plan
        if plan.bitflip_load_rate <= 0.0 or not self._active(index):
            return value
        rng = self._rngs["mem"]
        if rng.random() >= plan.bitflip_load_rate:
            return value
        if isinstance(value, int):
            bit = rng.randrange(plan.bitflip_bits)
            flipped = value ^ (1 << bit)
        else:
            # flip a low mantissa bit of the float64 representation so the
            # value stays finite
            bit = rng.randrange(min(plan.bitflip_bits, 48))
            bits = struct.unpack("<Q", struct.pack("<d", value))[0]
            flipped = struct.unpack("<d", struct.pack("<Q", bits ^ (1 << bit)))[0]
        self._record("mem", "bitflip", index,
                     f"addr={address:#x} bit={bit}")
        return flipped

    # -- fabric messages -------------------------------------------------
    def message_action(self, src: int, dst: int,
                       cycle: int) -> Tuple[str, int]:
        """Returns ("deliver", 0), ("delay", extra_cycles) or ("drop", 0)."""
        plan = self.plan
        if (plan.message_drop_rate <= 0.0
                and plan.message_delay_rate <= 0.0) \
                or not self._active(cycle):
            return ("deliver", 0)
        rng = self._rngs["msg"]
        draw = rng.random()
        if draw < plan.message_drop_rate:
            self._record("msg", "drop", cycle, f"{src}->{dst}")
            return ("drop", 0)
        if draw < plan.message_drop_rate + plan.message_delay_rate:
            self._record("msg", "delay", cycle,
                         f"{src}->{dst} +{plan.message_delay_cycles}")
            return ("delay", plan.message_delay_cycles)
        return ("deliver", 0)

    # -- DRAM ------------------------------------------------------------
    def dram_stall(self, address: int, cycle: int) -> int:
        """Extra cycles to stall one DRAM response (0 = no fault)."""
        plan = self.plan
        if plan.dram_stall_rate <= 0.0 or not self._active(cycle):
            return 0
        rng = self._rngs["dram"]
        if rng.random() >= plan.dram_stall_rate:
            return 0
        self._record("dram", "stall", cycle,
                     f"addr={address:#x} +{plan.dram_stall_cycles}")
        return plan.dram_stall_cycles

    # -- accelerators ----------------------------------------------------
    def accel_fault(self, name: str, cycle: int) -> Optional[bool]:
        """None = no fault; otherwise the fault's ``transient`` flag."""
        plan = self.plan
        if plan.accel_fault_rate <= 0.0 or not self._active(cycle):
            return None
        rng = self._rngs["accel"]
        if rng.random() >= plan.accel_fault_rate:
            return None
        self._record("accel", "fail", cycle, name)
        return plan.accel_fault_transient

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Fault counts keyed ``site.kind``."""
        counts: Dict[str, int] = {}
        for record in self.log:
            key = f"{record.site}.{record.kind}"
            counts[key] = counts.get(key, 0) + 1
        return counts
