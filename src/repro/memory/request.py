"""Memory request objects passed through the cache hierarchy."""

from __future__ import annotations

from typing import Callable, Optional


class MemRequest:
    """A single memory access as seen by the hierarchy.

    ``callback(cycle)`` fires when the request is fully serviced; requests
    without callbacks (writebacks, prefetches) complete silently.
    """

    __slots__ = ("address", "size", "is_write", "is_atomic", "is_prefetch",
                 "core_id", "callback", "issue_cycle", "service_level",
                 "coherence_delay")

    def __init__(self, address: int, size: int = 8, *, is_write: bool = False,
                 is_atomic: bool = False, is_prefetch: bool = False,
                 core_id: int = 0,
                 callback: Optional[Callable[[int], None]] = None,
                 issue_cycle: int = 0):
        self.address = address
        self.size = size
        self.is_write = is_write
        self.is_atomic = is_atomic
        self.is_prefetch = is_prefetch
        self.core_id = core_id
        self.callback = callback
        self.issue_cycle = issue_cycle
        #: name of the level that serviced this request ("L1", "dram", ...),
        #: stamped by the first level to respond; feeds cycle attribution
        self.service_level: Optional[str] = None
        #: directory invalidation delay applied to this request (cycles)
        self.coherence_delay = 0

    def line(self, line_bytes: int) -> int:
        return self.address // line_bytes

    def __repr__(self) -> str:
        kind = "W" if self.is_write else "R"
        if self.is_atomic:
            kind = "A"
        if self.is_prefetch:
            kind += "p"
        return f"<MemRequest {kind} {self.address:#x} core {self.core_id}>"
