"""Mesh network-on-chip model (paper §V-A extension).

The paper does not model NoCs but sketches how: "ports can be added to
the abstract tile model to create a message module in order to model
NoCs". This module provides that extension: a 2D mesh with XY routing;
memory traffic between a core tile and the shared-LLC bank that owns a
line pays per-hop link+router latency in each direction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass
class NoCConfig:
    """2D mesh parameters."""

    #: mesh dimensions; if 0, the smallest square holding all nodes is used
    width: int = 0
    height: int = 0
    #: per-hop wire latency (cycles)
    link_latency: int = 1
    #: per-router pipeline latency (cycles)
    router_latency: int = 2
    #: LLC banks, address-interleaved by line and placed like nodes
    llc_banks: int = 4


class MeshNoC:
    """XY-routed mesh: nodes are core tiles 0..N-1 plus LLC banks placed
    at the mesh's far side."""

    def __init__(self, config: NoCConfig, num_cores: int):
        self.config = config
        self.num_cores = num_cores
        total = num_cores + config.llc_banks
        width = config.width
        height = config.height
        if not width or not height:
            width = max(2, math.isqrt(total - 1) + 1)
            height = (total + width - 1) // width
        self.width = width
        self.height = height
        self.hops_total = 0
        self.traversals = 0
        #: NoCLinkObserver per-link busy ledger (attach_memstat)
        self.memstat = None

    def position(self, node: int) -> Tuple[int, int]:
        return node % self.width, node // self.width

    def bank_of(self, address: int, line_bytes: int = 64) -> int:
        line = address // line_bytes
        return line % self.config.llc_banks

    def bank_node(self, bank: int) -> int:
        """LLC banks occupy the node ids after the cores."""
        return self.num_cores + bank

    def hops(self, src_node: int, dst_node: int) -> int:
        sx, sy = self.position(src_node)
        dx, dy = self.position(dst_node)
        return abs(sx - dx) + abs(sy - dy)

    def latency(self, src_node: int, dst_node: int,
                cycle: Optional[int] = None) -> int:
        """One-way traversal latency (XY routing). When a link ledger is
        attached and the caller supplies the traversal's start ``cycle``,
        every link on the route is charged for its wire time."""
        hops = self.hops(src_node, dst_node)
        self.hops_total += hops
        self.traversals += 1
        if self.memstat is not None and cycle is not None:
            self.memstat.record_traversal(self, src_node, dst_node, cycle)
        return hops * self.config.link_latency \
            + (hops + 1) * self.config.router_latency

    def core_to_bank_latency(self, core: int, address: int,
                             line_bytes: int = 64,
                             cycle: Optional[int] = None) -> int:
        bank = self.bank_of(address, line_bytes)
        return self.latency(core, self.bank_node(bank), cycle)

    @property
    def average_hops(self) -> float:
        return self.hops_total / self.traversals if self.traversals else 0.0
