"""Directory-based coherence (paper §V-A extension).

The paper does not model coherence but sketches the design: "A directory
protocol can easily be implemented by treating the Interleaver as the
directory and allowing it to communicate with the caches." This module
provides that extension: a full-map directory that tracks which cores'
private hierarchies may hold each line and, on a write, invalidates the
other sharers' copies (MSI-style, tag-only like everything else in the
timing model).

Timing: an invalidating write is delayed by one directory round trip per
sharer hop (a flat per-invalidation latency, or NoC distances when a
mesh is attached).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .noc import MeshNoC


@dataclass
class CoherenceStats:
    invalidations: int = 0
    invalidation_messages: int = 0
    upgrades: int = 0          # writes that had to invalidate sharers
    directory_lookups: int = 0


class Directory:
    """Full-map sharer tracking for the private cache hierarchies."""

    def __init__(self, num_cores: int, line_bytes: int = 64,
                 invalidation_latency: int = 10,
                 noc: Optional[MeshNoC] = None):
        self.num_cores = num_cores
        self.line_bytes = line_bytes
        self.invalidation_latency = invalidation_latency
        self.noc = noc
        self._sharers: Dict[int, Set[int]] = {}
        self.stats = CoherenceStats()
        #: per-core invalidation callbacks, set by the memory system:
        #: called with the line address to drop it from private caches
        self.invalidate_hooks: List = [None] * num_cores

    def access(self, core: int, address: int, is_write: bool) -> int:
        """Record an access; returns extra cycles of coherence delay."""
        line = address // self.line_bytes
        self.stats.directory_lookups += 1
        sharers = self._sharers.setdefault(line, set())
        delay = 0
        if is_write:
            others = sharers - {core}
            if others:
                self.stats.upgrades += 1
                for other in sorted(others):
                    self.stats.invalidations += 1
                    self.stats.invalidation_messages += 1
                    hook = self.invalidate_hooks[other]
                    if hook is not None:
                        hook(line * self.line_bytes)
                    if self.noc is not None:
                        delay = max(delay, self.noc.latency(core, other))
                    else:
                        delay = self.invalidation_latency
            sharers.clear()
            sharers.add(core)
        else:
            sharers.add(core)
        return delay

    def sharers_of(self, address: int) -> Set[int]:
        return set(self._sharers.get(address // self.line_bytes, ()))
