"""Set-associative cache model (paper §V-A).

Write-back, write-allocate, tag-only (no data — MosaicSim is a timing
simulator). Includes an MSHR that merges requests to in-flight lines and a
configurable stream prefetcher. Misses and writebacks are forwarded to the
next level through the ``next_access`` callable, so caches chain into a
hierarchy ending at a DRAM model.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim.config import CacheConfig, PrefetcherConfig
from ..sim.events import Scheduler
from ..sim.statistics import CacheStats
from .request import MemRequest

NextAccess = Callable[[MemRequest, int], None]


class _Retry:
    """Re-present a request blocked by a full MSHR (picklable callback —
    the checkpoint layer snapshots the live scheduler heap)."""

    __slots__ = ("cache", "request")

    def __init__(self, cache: "Cache", request: MemRequest):
        self.cache = cache
        self.request = request

    def __call__(self, cycle: int) -> None:
        self.cache.access(self.request, cycle)


class _FillCallback:
    """Install the fetched line and release the MSHR waiters when the
    next level responds to a miss's fill request."""

    __slots__ = ("cache", "fill", "was_write", "miss_cycle")

    def __init__(self, cache: "Cache", fill: MemRequest, was_write: bool,
                 miss_cycle: int):
        self.cache = cache
        self.fill = fill
        self.was_write = was_write
        self.miss_cycle = miss_cycle

    def __call__(self, cycle: int) -> None:
        self.cache._fill(self.fill, self.was_write, cycle, self.miss_cycle)


class _Set:
    """One cache set with LRU replacement. Maps tag -> dirty flag, with
    insertion order as recency (last = most recent)."""

    __slots__ = ("lines",)

    def __init__(self):
        self.lines: Dict[int, bool] = {}

    def touch(self, tag: int) -> None:
        dirty = self.lines.pop(tag)
        self.lines[tag] = dirty


class Cache:
    """A single cache level."""

    def __init__(self, config: CacheConfig, scheduler: Scheduler,
                 next_access: NextAccess, stats: CacheStats,
                 energy_sink: Optional[List[float]] = None,
                 prefetcher: Optional[PrefetcherConfig] = None):
        self.config = config
        self.scheduler = scheduler
        self.next_access = next_access
        self.stats = stats
        self.energy_sink = energy_sink
        #: cycle-level Tracer (attached by MemorySystem.attach_tracer)
        self.tracer = None
        self.trace_tid = 0
        #: per-instance CacheMemStat (attached by attach_memstat)
        self.memstat = None
        self._sets = [_Set() for _ in range(config.num_sets)]
        # geometry scalars hoisted off the config (num_sets is a derived
        # property; the access path reads these every request)
        self._num_sets = config.num_sets
        self._line_bytes = config.line_bytes
        self._latency = config.latency
        self._mshr_entries = config.mshr_entries
        #: line -> list of waiting requests (MSHR)
        self._mshr: Dict[int, List[MemRequest]] = {}
        self._port_free = 0.0
        self._port_step = 1.0 / max(1, config.ports)
        self._prefetcher = (_StreamPrefetcher(prefetcher, self)
                            if prefetcher and prefetcher.enabled else None)

    # ------------------------------------------------------------------
    def access(self, request: MemRequest, cycle: int) -> None:
        """Entry point: present ``request`` to this cache at ``cycle``."""
        start = max(cycle, int(self._port_free))
        self._port_free = max(self._port_free, float(cycle)) + self._port_step
        self._charge_energy()

        num_sets = self._num_sets
        line = request.line(self._line_bytes)
        set_index = line % num_sets
        tag = line // num_sets
        cache_set = self._sets[set_index]

        if self._prefetcher is not None and not request.is_prefetch:
            self._prefetcher.observe(request, cycle)

        if tag in cache_set.lines:
            cache_set.touch(tag)
            if request.is_write:
                cache_set.lines[tag] = True
            if not request.is_prefetch:
                self.stats.hits += 1
            if self.memstat is not None:
                self.memstat.record_hit(line, request.is_prefetch)
            if request.service_level is None:
                # first level to hit classifies the request (attribution)
                request.service_level = self.stats.name
            self._respond(request, start + self._latency)
            return

        # miss ---------------------------------------------------------
        # NOTE: is_prefetch only affects accounting; a prefetch-tagged
        # request may still carry a callback (e.g. an upper level's fill),
        # so response plumbing treats all requests alike.
        waiting = self._mshr.get(line)
        if waiting is not None:
            # secondary miss: merge with the in-flight request to this line
            self.stats.mshr_merges += 1
            waiting.append(request)
            return
        if len(self._mshr) >= self._mshr_entries:
            # MSHR full: retry next cycle (models back-pressure)
            self.scheduler.at(start + 1, _Retry(self, request))
            return
        if request.is_prefetch:
            self.stats.prefetches += 1
            if self.memstat is not None:
                self.memstat.record_prefetch_fill(line)
        else:
            self.stats.misses += 1
            if self.memstat is not None:
                self.memstat.record_miss(line, set_index)

        self._mshr[line] = [request]
        fill = MemRequest(
            line * self._line_bytes, self._line_bytes,
            is_write=False, is_prefetch=request.is_prefetch,
            core_id=request.core_id)
        fill.callback = _FillCallback(self, fill, request.is_write, start)
        self.next_access(fill, start + self._latency)

    # ------------------------------------------------------------------
    def _fill(self, fill_request: MemRequest, was_write: bool, cycle: int,
              miss_cycle: int = 0) -> None:
        line = fill_request.line(self._line_bytes)
        if self.tracer is not None:
            # span: the miss's full round trip until the line fills
            self.tracer.complete(
                "cache", f"{self.stats.name} miss", miss_cycle, cycle,
                self.trace_tid, {"line": line})
        num_sets = self._num_sets
        set_index = line % num_sets
        tag = line // num_sets
        cache_set = self._sets[set_index]
        if tag not in cache_set.lines:
            if len(cache_set.lines) >= self.config.associativity:
                victim_tag, dirty = next(iter(cache_set.lines.items()))
                del cache_set.lines[victim_tag]
                if dirty:
                    self._writeback(victim_tag * num_sets
                                    + set_index, cycle)
            cache_set.lines[tag] = False
        waiting = self._mshr.pop(line, [])
        dirty = was_write or any(w.is_write for w in waiting)
        if dirty:
            cache_set.lines[tag] = True
        for request in waiting:
            if request.service_level is None:
                # waiters were served wherever the fill was served
                request.service_level = fill_request.service_level
            self._respond(request, cycle)

    def _writeback(self, line: int, cycle: int) -> None:
        self.stats.writebacks += 1
        request = MemRequest(line * self.config.line_bytes,
                             self.config.line_bytes, is_write=True)
        self.next_access(request, cycle)

    def _respond(self, request: MemRequest, cycle: int) -> None:
        if request.callback is not None:
            self.scheduler.at(cycle, request.callback)

    def _charge_energy(self) -> None:
        if self.energy_sink is not None:
            self.energy_sink[0] += self.config.energy_nj

    # ------------------------------------------------------------------
    def invalidate(self, address: int) -> bool:
        """Coherence invalidation: drop the line if present (tag-only;
        dirty data is discarded — the directory extension models timing,
        not writeback bandwidth). Returns True if the line was present."""
        line = address // self.config.line_bytes
        cache_set = self._sets[line % self.config.num_sets]
        tag = line // self.config.num_sets
        if tag in cache_set.lines:
            del cache_set.lines[tag]
            return True
        return False

    # ------------------------------------------------------------------
    def contains(self, address: int) -> bool:
        """Tag probe (no side effects) — used by tests."""
        line = address // self.config.line_bytes
        cache_set = self._sets[line % self.config.num_sets]
        return (line // self.config.num_sets) in cache_set.lines

    @property
    def mshr_occupancy(self) -> int:
        return len(self._mshr)


class _StreamPrefetcher:
    """Detects constant-stride access chains and fetches lines ahead
    (paper §V-A: "tracks memory requests to see if there exists a chain of
    accesses that are k words apart").

    Streams are tracked per 4 KB region so interleaved accesses to several
    arrays (e.g. SPMV's col/val/x) are each recognized — the standard
    multi-stream table of hardware streamers. The table holds 16 streams
    with LRU replacement.
    """

    _TABLE_ENTRIES = 16
    _REGION_SHIFT = 12

    def __init__(self, config: PrefetcherConfig, cache: Cache):
        self.config = config
        self.cache = cache
        #: region -> [last_address, stride, streak], LRU-ordered
        self._streams: Dict[int, List[int]] = {}

    def observe(self, request: MemRequest, cycle: int) -> None:
        address = request.address
        region = address >> self._REGION_SHIFT
        entry = self._streams.pop(region, None)
        if entry is None:
            if len(self._streams) >= self._TABLE_ENTRIES:
                oldest = next(iter(self._streams))
                del self._streams[oldest]
            entry = [address, 0, 0]
        else:
            stride = address - entry[0]
            if stride != 0 and stride == entry[1]:
                entry[2] += 1
            else:
                entry[1] = stride
                entry[2] = 1 if stride != 0 else 0
            entry[0] = address
        self._streams[region] = entry

        if entry[2] >= self.config.trigger and entry[1]:
            # keep streaming: every further in-stride access prefetches
            # ahead (already-resident lines are filtered by the tag check)
            line_bytes = self.cache.config.line_bytes
            direction = 1 if entry[1] > 0 else -1
            base_line = address // line_bytes \
                + direction * self.config.distance
            for i in range(self.config.degree):
                line = base_line + direction * i
                if line < 0:
                    continue
                prefetch = MemRequest(line * line_bytes, line_bytes,
                                      is_prefetch=True,
                                      core_id=request.core_id)
                self.cache.access(prefetch, cycle)
