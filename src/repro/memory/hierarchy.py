"""The composed memory system: per-core private caches, a shared LLC, and a
DRAM model (paper §V).

Each core tile owns a chain of private levels (L1 first); all chains merge
into the shared LLC, which forwards to DRAM. "Each core tile model
maintains a cache queue ordered with respect to the cache hierarchy" — the
chain of ``next_access`` callables realizes that queue.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim.config import MemoryHierarchyConfig
from ..sim.events import Scheduler
from ..sim.statistics import CacheStats, DRAMStats
from .cache import Cache
from .coherence import Directory
from .dram import DRAMSim2Model, SimpleDRAM
from .noc import MeshNoC
from .request import MemRequest


# -- picklable callback objects -----------------------------------------------
#
# Everything that can sit in the Scheduler heap or on a MemRequest must
# be a callable class or bound method, never a closure, so the
# checkpoint layer (repro.checkpoint) can snapshot in-flight requests.

class _Deliver:
    """Deliver ``request`` to an access entry point at the fire cycle."""

    __slots__ = ("entry", "request")

    def __init__(self, entry: Callable[[MemRequest, int], None],
                 request: MemRequest):
        self.entry = entry
        self.request = request

    def __call__(self, cycle: int) -> None:
        self.entry(self.request, cycle)


class _NoCReturn:
    """Charge the response's mesh traversal back to the core before the
    original callback fires. When a link ledger is attached, ``noc`` is
    set and the bank->core traversal is recorded at its *actual* start
    cycle (the response leaves the bank now, not at request time)."""

    __slots__ = ("scheduler", "callback", "delay", "noc", "src", "dst")

    def __init__(self, scheduler: Scheduler,
                 callback: Callable[[int], None], delay: int,
                 noc: Optional[MeshNoC] = None, src: int = 0,
                 dst: int = 0):
        self.scheduler = scheduler
        self.callback = callback
        self.delay = delay
        self.noc = noc
        self.src = src
        self.dst = dst

    def __call__(self, cycle: int) -> None:
        noc = self.noc
        if noc is not None and noc.memstat is not None:
            noc.memstat.record_traversal(noc, self.src, self.dst, cycle)
        self.scheduler.at(cycle + self.delay, self.callback)


class _NoCEntry:
    """Per-core hierarchy entry that charges the mesh traversal to and
    from the owning LLC bank (replaces MemorySystem._noc_wrap)."""

    __slots__ = ("noc", "scheduler", "core", "llc_access")

    def __init__(self, noc: MeshNoC, scheduler: Scheduler, core: int,
                 llc_access: Callable[[MemRequest, int], None]):
        self.noc = noc
        self.scheduler = scheduler
        self.core = core
        self.llc_access = llc_access

    def __call__(self, request: MemRequest, cycle: int) -> None:
        noc = self.noc
        there = noc.core_to_bank_latency(self.core, request.address,
                                         cycle=cycle)
        original = request.callback
        if original is not None:
            # the return hops are computed now (latency is deterministic)
            # but the ledger charge, if any, happens when the response
            # actually traverses — _NoCReturn records at fire time
            bank_node = noc.bank_node(noc.bank_of(request.address))
            back = noc.latency(bank_node, self.core)
            record = noc if noc.memstat is not None else None
            request.callback = _NoCReturn(self.scheduler, original, back,
                                          record, bank_node, self.core)
        self.scheduler.at(cycle + there,
                          _Deliver(self.llc_access, request))


class _Invalidator:
    """Coherence invalidation hook over one core's private levels."""

    __slots__ = ("levels",)

    def __init__(self, levels: List["Cache"]):
        self.levels = levels

    def __call__(self, address: int) -> None:
        for cache in self.levels:
            cache.invalidate(address)


class _TrackedCallback:
    """Response bookkeeping: decrement the outstanding count, observe the
    end-to-end latency, then run the issuer's callback."""

    __slots__ = ("memsys", "done", "issue_cycle")

    def __init__(self, memsys: "MemorySystem",
                 done: Callable[[int], None], issue_cycle: int):
        self.memsys = memsys
        self.done = done
        self.issue_cycle = issue_cycle

    def __call__(self, cycle: int) -> None:
        memsys = self.memsys
        memsys.outstanding -= 1
        if memsys._latency_hist is not None:
            memsys._latency_hist.observe(cycle - self.issue_cycle)
        self.done(cycle)


class MemorySystem:
    """Builds and owns the full cache/DRAM composition."""

    def __init__(self, config: MemoryHierarchyConfig, num_cores: int,
                 scheduler: Scheduler, frequency_ghz: float = 2.0,
                 injector=None):
        config.validate()
        self.config = config
        self.num_cores = num_cores
        self.scheduler = scheduler
        #: single-element lists so caches/DRAM accumulate energy in place
        self._cache_energy = [0.0]
        self._dram_energy = [0.0]
        self.dram_stats = DRAMStats()
        #: aggregated per level name ("L1", "L2", "LLC")
        self.cache_stats: Dict[str, CacheStats] = {}
        #: requests issued but not yet responded (deadlock diagnostics)
        self.outstanding = 0
        #: end-to-end request latency histogram (attach_metrics)
        self._latency_hist = None
        #: data-movement observatory (attach_memstat)
        self._memstat = None

        if config.dram_model == "simple":
            self.dram = SimpleDRAM(config.simple_dram, scheduler,
                                   self.dram_stats, frequency_ghz,
                                   self._dram_energy, injector=injector)
        elif config.dram_model == "dramsim2":
            self.dram = DRAMSim2Model(config.dramsim2, scheduler,
                                      self.dram_stats, self._dram_energy,
                                      injector=injector)
        else:
            raise ValueError(f"unknown DRAM model {config.dram_model!r}")

        dram_access = self.dram.access

        self.llc: Optional[Cache] = None
        llc_access = dram_access
        if config.llc is not None:
            stats = self._stats_for(config.llc.name)
            self.llc = Cache(config.llc, scheduler, dram_access, stats,
                             self._cache_energy)
            llc_access = self.llc.access

        # optional mesh NoC between private hierarchies and the LLC banks
        # (§V-A extension)
        self.noc: Optional[MeshNoC] = None
        if config.noc is not None:
            self.noc = MeshNoC(config.noc, num_cores)

        #: per-core entry point (the L1 access function)
        self._entries: List[Callable[[MemRequest, int], None]] = []
        self.private_caches: List[List[Cache]] = []
        for core in range(num_cores):
            chain_entry = llc_access
            if self.noc is not None:
                chain_entry = _NoCEntry(self.noc, scheduler, core,
                                        llc_access)
            levels: List[Cache] = []
            for level_config in reversed(config.private_levels):
                stats = self._stats_for(level_config.name)
                prefetch = (config.prefetcher
                            if level_config is config.private_levels[0]
                            else None)
                cache = Cache(level_config, scheduler, chain_entry, stats,
                              self._cache_energy, prefetcher=prefetch)
                chain_entry = cache.access
                levels.append(cache)
            levels.reverse()
            self.private_caches.append(levels)
            self._entries.append(chain_entry)

        # optional directory coherence over the private hierarchies
        # (§V-A extension)
        self.directory: Optional[Directory] = None
        if config.coherence:
            line_bytes = (config.private_levels[0].line_bytes
                          if config.private_levels else 64)
            self.directory = Directory(
                num_cores, line_bytes=line_bytes,
                invalidation_latency=config.invalidation_latency,
                noc=self.noc)
            for core in range(num_cores):
                self.directory.invalidate_hooks[core] = \
                    _Invalidator(self.private_caches[core])

    def _stats_for(self, name: str) -> CacheStats:
        if name not in self.cache_stats:
            self.cache_stats[name] = CacheStats(name=name)
        return self.cache_stats[name]

    # -- observability ---------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Hand the cycle tracer to every cache level and the DRAM model.
        All cache levels share one trace lane; DRAM gets its own."""
        cache_tid = tracer.tid_for("cache")
        for levels in self.private_caches:
            for cache in levels:
                cache.tracer = tracer
                cache.trace_tid = cache_tid
        if self.llc is not None:
            self.llc.tracer = tracer
            self.llc.trace_tid = cache_tid
        self.dram.tracer = tracer
        self.dram.trace_tid = tracer.tid_for("dram")

    def attach_metrics(self, metrics) -> None:
        """Register memory-system metrics; the request-latency histogram
        is observed on every response (single branch when detached)."""
        self._latency_hist = metrics.histogram(
            "memory.request_latency_cycles")

    def attach_memstat(self, memstat) -> None:
        """Hand the data-movement observatory to every cache instance,
        the DRAM model, and the mesh (same fan-out as attach_tracer).
        Each cache gets its *own* observer — per-core L1s must not share
        shadow state — aggregated by level name at report time."""
        memstat.line_bytes = self.line_bytes
        self._memstat = memstat
        for levels in self.private_caches:
            for cache in levels:
                cache.memstat = memstat.cache_observer(
                    cache.stats.name, cache.config.num_sets,
                    cache.config.associativity)
        if self.llc is not None:
            self.llc.memstat = memstat.cache_observer(
                self.llc.stats.name, self.llc.config.num_sets,
                self.llc.config.associativity)
        if self.config.dram_model == "dramsim2":
            dramsim = self.config.dramsim2
            self.dram.memstat = memstat.dram_observer(
                banks=dramsim.channels * dramsim.banks_per_channel,
                row_bytes=dramsim.row_bytes,
                line_bytes=dramsim.line_bytes,
                channels=dramsim.channels, model="dramsim2")
        else:
            # SimpleDRAM has no banks: shadow a typical DDR geometry
            # (8 banks, 2 KB rows) purely for locality observation
            self.dram.memstat = memstat.dram_observer(
                banks=8, row_bytes=2048, line_bytes=self.line_bytes,
                channels=1, model="simple-shadow")
        if self.noc is not None:
            self.noc.memstat = memstat.noc_observer()

    # ------------------------------------------------------------------
    def access(self, core_id: int, address: int, size: int, *,
               is_write: bool, cycle: int,
               callback: Callable[[int], None],
               is_atomic: bool = False) -> MemRequest:
        """Issue one memory access from ``core_id``'s L1.

        Returns the request object so callers that attribute stall cycles
        can read the ``service_level`` the hierarchy stamps on it."""
        self.outstanding += 1
        if self._memstat is not None:
            # per-tile reuse profile, at the hierarchy entry point
            self._memstat.observe_tile_access(core_id, address)
        request = MemRequest(address, size, is_write=is_write,
                             is_atomic=is_atomic, core_id=core_id,
                             callback=_TrackedCallback(self, callback, cycle),
                             issue_cycle=cycle)
        if self.directory is not None:
            delay = self.directory.access(core_id, address,
                                          is_write or is_atomic)
            if delay:
                request.coherence_delay = delay
                self.scheduler.at(
                    cycle + delay,
                    _Deliver(self._entries[core_id], request))
                return request
        self._entries[core_id](request, cycle)
        return request

    @property
    def line_bytes(self) -> int:
        """Cache-line size of the innermost configured level (used to turn
        DRAM request counts into byte traffic for the roofline)."""
        if self.config.private_levels:
            return self.config.private_levels[0].line_bytes
        if self.config.llc is not None:
            return self.config.llc.line_bytes
        return 64

    @property
    def cache_energy_nj(self) -> float:
        return self._cache_energy[0]

    @property
    def dram_energy_nj(self) -> float:
        return self._dram_energy[0]

    @property
    def energy_nj(self) -> float:
        return self._cache_energy[0] + self._dram_energy[0]
