"""``repro.memory`` — the memory hierarchy (paper §V).

Tag-only set-associative caches (write-back, write-allocate, inclusive by
composition) with MSHRs and a stream prefetcher, plus two DRAM models:
SimpleDRAM (min latency + epoch bandwidth throttling) and a cycle-level
banked model standing in for DRAMSim2.
"""

from .cache import Cache
from .coherence import CoherenceStats, Directory
from .dram import DRAMSim2Model, SimpleDRAM
from .hierarchy import MemorySystem
from .noc import MeshNoC, NoCConfig
from .request import MemRequest

__all__ = ["Cache", "CoherenceStats", "Directory", "DRAMSim2Model",
           "SimpleDRAM", "MemorySystem", "MeshNoC", "NoCConfig",
           "MemRequest"]
