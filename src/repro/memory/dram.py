"""DRAM models (paper §V-B).

``SimpleDRAM`` — the in-house default: every request sees a minimum
latency, and a maximum bandwidth is enforced in epochs. Once the requests
returned in an epoch exhaust the bandwidth budget, further responses wait
for the next epoch (modeling bandwidth contention and throttling).

``DRAMSim2Model`` — the detailed alternative (stand-in for DRAMSim2):
channels, banks and row buffers with tRCD/tRP/tCAS timing and per-channel
bus occupancy. Slower to simulate and with a larger footprint, as the
paper notes for the real DRAMSim2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.config import DRAMSim2Config, SimpleDRAMConfig
from ..sim.events import Scheduler
from ..sim.statistics import DRAMStats
from .request import MemRequest


class SimpleDRAM:
    def __init__(self, config: SimpleDRAMConfig, scheduler: Scheduler,
                 stats: DRAMStats, frequency_ghz: float,
                 energy_sink: Optional[List[float]] = None,
                 injector=None):
        self.config = config
        self.scheduler = scheduler
        self.stats = stats
        self.energy_sink = energy_sink
        #: optional FaultInjector: extra response stalls
        self.injector = injector
        #: cycle-level Tracer (attached by MemorySystem.attach_tracer)
        self.tracer = None
        self.trace_tid = 0
        #: DRAMMemStat shadow bank/row observer (attach_memstat)
        self.memstat = None
        self._per_epoch = config.requests_per_epoch(frequency_ghz)
        #: epoch index -> responses already returned in that epoch
        self._epoch_counts: Dict[int, int] = {}

    def access(self, request: MemRequest, cycle: int) -> None:
        self.stats.requests += 1
        if request.service_level is None:
            request.service_level = "dram"
        if self.energy_sink is not None:
            self.energy_sink[0] += self.config.energy_nj
        if self.memstat is not None:
            # SimpleDRAM has no banks; the observer runs a shadow
            # open-row model (observability only, timing unchanged)
            self.memstat.observe_address(request.address)
        ready = cycle + self.config.min_latency
        epoch = ready // self.config.epoch_cycles
        throttled = False
        # find the first epoch with remaining bandwidth budget
        while self._epoch_counts.get(epoch, 0) >= self._per_epoch:
            epoch += 1
            throttled = True
        self._epoch_counts[epoch] = self._epoch_counts.get(epoch, 0) + 1
        if throttled:
            self.stats.throttled += 1
            completion = max(ready, epoch * self.config.epoch_cycles)
        else:
            completion = ready
        if self.injector is not None:
            completion += self.injector.dram_stall(request.address, cycle)
        self.stats.total_latency += completion - cycle
        if self.tracer is not None:
            self.tracer.complete(
                "dram", "write" if request.is_write else "read",
                cycle, completion, self.trace_tid,
                {"throttled": throttled})
        if request.callback is not None:
            self.scheduler.at(completion, request.callback)
        self._prune(cycle)

    def _prune(self, cycle: int) -> None:
        if len(self._epoch_counts) > 1024:
            current = cycle // self.config.epoch_cycles
            self._epoch_counts = {
                e: c for e, c in self._epoch_counts.items() if e >= current}


class DRAMSim2Model:
    """Bank/row-buffer cycle-level model."""

    def __init__(self, config: DRAMSim2Config, scheduler: Scheduler,
                 stats: DRAMStats,
                 energy_sink: Optional[List[float]] = None,
                 injector=None):
        self.config = config
        self.scheduler = scheduler
        self.stats = stats
        self.energy_sink = energy_sink
        #: optional FaultInjector: extra response stalls
        self.injector = injector
        #: cycle-level Tracer (attached by MemorySystem.attach_tracer)
        self.tracer = None
        self.trace_tid = 0
        #: DRAMMemStat per-bank locality observer (attach_memstat)
        self.memstat = None
        num_banks = config.channels * config.banks_per_channel
        #: per-bank (open_row, next_free_cycle)
        self._banks: List[Tuple[Optional[int], int]] = [
            (None, 0)] * num_banks
        #: per-channel bus next-free cycle
        self._bus_free = [0] * config.channels

    def _map(self, address: int) -> Tuple[int, int, int]:
        """Return (channel, bank index, row) for an address.

        Line-interleaved across channels, then banks, to spread streams.
        """
        config = self.config
        line = address // config.line_bytes
        channel = line % config.channels
        bank_in_channel = (line // config.channels) % config.banks_per_channel
        bank = channel * config.banks_per_channel + bank_in_channel
        row = address // config.row_bytes
        return channel, bank, row

    def access(self, request: MemRequest, cycle: int) -> None:
        config = self.config
        self.stats.requests += 1
        if request.service_level is None:
            request.service_level = "dram"
        if self.energy_sink is not None:
            self.energy_sink[0] += config.energy_nj
        channel, bank, row = self._map(request.address)
        open_row, bank_free = self._banks[bank]
        if self.memstat is not None:
            # authoritative bank state: hit / closed-row miss / conflict
            self.memstat.record(bank, open_row, row)
        start = max(cycle, bank_free, self._bus_free[channel])
        row_hit = open_row == row
        if open_row == row:
            self.stats.row_hits += 1
            service = config.t_cas
        else:
            self.stats.row_misses += 1
            if open_row is None:
                service = config.t_rcd + config.t_cas
            else:
                service = config.t_rp + config.t_rcd + config.t_cas
        service_cycles = (service + config.burst_cycles) * config.clock_ratio
        completion = start + service_cycles
        self._banks[bank] = (row, completion)
        self._bus_free[channel] = start + config.burst_cycles * \
            config.clock_ratio
        if self.injector is not None:
            # stall the response only; bank/bus state frees on schedule
            completion += self.injector.dram_stall(request.address, cycle)
        self.stats.total_latency += completion - cycle
        if self.tracer is not None:
            self.tracer.complete(
                "dram", "write" if request.is_write else "read",
                cycle, completion, self.trace_tid,
                {"row_hit": row_hit, "bank": bank})
        if request.callback is not None:
            self.scheduler.at(completion, request.callback)
