"""Scalar optimization passes: constant folding, algebraic
simplification, common-subexpression elimination, and loop-invariant code
motion.

MosaicSim's headline use case is hardware–software co-design: "the use of
LLVM IR allows natural additions of compiler passes" (paper §VIII). These
passes form the ``-O1`` pipeline used by the compiler-co-design ablation —
the same kernel simulated from unoptimized vs optimized IR shows how a
compiler change moves the hardware bottleneck, with no simulator changes.

All passes operate on SSA mini-IR after mem2reg and preserve semantics
for the interpreter and the timing model alike.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst, BranchInst, CallInst, CastInst, CmpInst, GEPInst,
    Instruction, LoadInst, Opcode, PhiInst, SelectInst,
)
from ..ir.values import Constant, Value
from .dominators import DominatorTree
from .mem2reg import dead_code_elimination

_FOLDABLE = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << b,
    Opcode.ASHR: lambda a, b: a >> b,
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
}

#: instruction kinds that are pure (safe to fold, combine, or hoist)
_PURE_OPCODES = {
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SHL, Opcode.LSHR, Opcode.ASHR, Opcode.FADD, Opcode.FSUB,
    Opcode.FMUL, Opcode.FDIV, Opcode.ICMP, Opcode.FCMP, Opcode.SELECT,
    Opcode.GEP, Opcode.SEXT, Opcode.ZEXT, Opcode.TRUNC, Opcode.SITOFP,
    Opcode.FPTOSI, Opcode.FPEXT, Opcode.FPTRUNC, Opcode.BITCAST,
}
# note: SDIV/SREM/FDIV-by-zero can trap; SDIV/SREM are excluded from
# folding and hoisting, FDIV folds only with a non-zero constant divisor


def _replace_uses(func: Function, old: Value, new: Value) -> None:
    for inst in func.instructions():
        if inst is not new:
            inst.replace_operand(old, new)


def constant_fold(func: Function) -> int:
    """Fold pure instructions whose operands are all constants, plus the
    usual algebraic identities (x+0, x*1, x*0, x-x...)."""
    folded = 0
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            for inst in list(block.instructions):
                replacement = _fold_one(inst)
                if replacement is not None:
                    _replace_uses(func, inst, replacement)
                    block.remove(inst)
                    folded += 1
                    changed = True
    return folded


def _fold_one(inst: Instruction) -> Optional[Value]:
    if isinstance(inst, BinaryInst):
        lhs, rhs = inst.operands
        lhs_const = isinstance(lhs, Constant)
        rhs_const = isinstance(rhs, Constant)
        if lhs_const and rhs_const:
            handler = _FOLDABLE.get(inst.opcode)
            if handler is not None:
                return Constant(inst.type, handler(lhs.value, rhs.value))
            if inst.opcode is Opcode.FDIV and rhs.value != 0:
                return Constant(inst.type, lhs.value / rhs.value)
        # algebraic identities
        opcode = inst.opcode
        if rhs_const:
            if rhs.value == 0 and opcode in (Opcode.ADD, Opcode.SUB,
                                             Opcode.OR, Opcode.XOR,
                                             Opcode.SHL, Opcode.ASHR,
                                             Opcode.FADD, Opcode.FSUB):
                return lhs
            if rhs.value == 1 and opcode in (Opcode.MUL, Opcode.FMUL,
                                             Opcode.SDIV, Opcode.FDIV):
                return lhs
            if rhs.value == 0 and opcode in (Opcode.MUL, Opcode.AND):
                return Constant(inst.type, 0)
        if lhs_const:
            if lhs.value == 0 and opcode in (Opcode.ADD, Opcode.OR,
                                             Opcode.FADD):
                return rhs
            if lhs.value == 1 and opcode in (Opcode.MUL, Opcode.FMUL):
                return rhs
            if lhs.value == 0 and opcode in (Opcode.MUL, Opcode.AND):
                return Constant(inst.type, 0)
        if lhs is rhs and opcode in (Opcode.SUB, Opcode.XOR):
            return Constant(inst.type, 0)
    if isinstance(inst, CmpInst):
        lhs, rhs = inst.operands
        if isinstance(lhs, Constant) and isinstance(rhs, Constant):
            from ..trace.interpreter import _FCMP, _ICMP
            table = _ICMP if inst.opcode is Opcode.ICMP else _FCMP
            return Constant(inst.type,
                            int(table[inst.predicate](lhs.value, rhs.value)))
    if isinstance(inst, SelectInst):
        condition = inst.operands[0]
        if isinstance(condition, Constant):
            return inst.operands[1] if condition.value else inst.operands[2]
        if inst.operands[1] is inst.operands[2]:
            return inst.operands[1]
    if isinstance(inst, CastInst) and isinstance(inst.operands[0], Constant):
        value = inst.operands[0].value
        if inst.type.is_integer:
            return Constant(inst.type, int(value))
        if inst.type.is_float:
            return Constant(inst.type, float(value))
    return None


def _cse_key(inst: Instruction) -> Optional[Tuple]:
    if inst.opcode not in _PURE_OPCODES:
        return None
    if isinstance(inst, PhiInst):
        return None
    extra: Tuple = ()
    if isinstance(inst, CmpInst):
        extra = (inst.predicate,)
    operands = tuple(
        id(op) if isinstance(op, Instruction) or not isinstance(op, Constant)
        else ("const", str(op.type), op.value)
        for op in inst.operands)
    return (inst.opcode, str(inst.type), extra, operands)


def common_subexpression_elimination(func: Function) -> int:
    """Dominator-scoped CSE over pure instructions."""
    dom = DominatorTree(func)
    removed = 0

    def walk(block: BasicBlock, available: Dict[Tuple, Instruction]) -> None:
        nonlocal removed
        scope = dict(available)
        for inst in list(block.instructions):
            key = _cse_key(inst)
            if key is None:
                continue
            existing = scope.get(key)
            if existing is not None:
                _replace_uses(func, inst, existing)
                block.remove(inst)
                removed += 1
            else:
                scope[key] = inst
        for child in dom.children[id(block)]:
            walk(child, scope)

    walk(func.entry, {})
    return removed


# ---------------------------------------------------------------------------
# loop-invariant code motion
# ---------------------------------------------------------------------------

def _natural_loops(func: Function, dom: DominatorTree
                   ) -> List[Tuple[BasicBlock, Set[int]]]:
    """Find (header, loop-body block ids) for each back edge."""
    loops: List[Tuple[BasicBlock, Set[int]]] = []
    for block in dom.order:
        for successor in block.successors:
            if dom.dominates(successor, block):      # back edge
                header = successor
                body: Set[int] = {id(header), id(block)}
                stack = [block]
                while stack:
                    node = stack.pop()
                    if node is header:
                        continue
                    for pred in node.predecessors:
                        if id(pred) not in body:
                            body.add(id(pred))
                            stack.append(pred)
                loops.append((header, body))
    return loops


def loop_invariant_code_motion(func: Function) -> int:
    """Hoist pure, loop-invariant instructions into a preheader.

    An instruction is invariant when every operand is a constant, an
    argument, or an instruction defined outside the loop (or already
    hoisted). Loads/stores/calls never move (memory behavior must be
    preserved for trace fidelity).
    """
    dom = DominatorTree(func)
    hoisted_total = 0
    for header, body in _natural_loops(func, dom):
        preheader = _find_preheader(header, body)
        if preheader is None:
            continue
        invariant: Set[int] = set()
        changed = True
        while changed:
            changed = False
            for block in func.blocks:
                if id(block) not in body:
                    continue
                for inst in list(block.instructions):
                    if (inst.opcode not in _PURE_OPCODES
                            or inst.opcode is Opcode.FDIV  # may trap on 0
                            or isinstance(inst, PhiInst)
                            or id(inst) in invariant):
                        continue
                    if all(_defined_outside(op, body, invariant)
                           for op in inst.operands):
                        # hoist before the preheader's terminator
                        block.remove(inst)
                        inst.parent = preheader
                        preheader.instructions.insert(
                            len(preheader.instructions) - 1, inst)
                        invariant.add(id(inst))
                        hoisted_total += 1
                        changed = True
    return hoisted_total


def _defined_outside(value: Value, body: Set[int],
                     hoisted: Set[int]) -> bool:
    if not isinstance(value, Instruction):
        return True
    if id(value) in hoisted:
        return True
    return id(value.parent) not in body


def _find_preheader(header: BasicBlock,
                    body: Set[int]) -> Optional[BasicBlock]:
    outside = [p for p in header.predecessors if id(p) not in body]
    if len(outside) != 1:
        return None
    preheader = outside[0]
    if len(preheader.successors) != 1:
        return None  # would execute hoisted code on a path skipping the loop
    return preheader


def optimize(func: Function, *, verify: bool = True) -> Dict[str, int]:
    """The -O1 pipeline: fold -> CSE -> LICM -> fold -> CSE -> DCE.

    Returns per-pass work counts. The function is re-finalized (fresh
    instruction ids), so DDGs must be rebuilt afterwards.
    """
    report = {
        "constant_fold": constant_fold(func),
        "cse": common_subexpression_elimination(func),
        "licm": loop_invariant_code_motion(func),
    }
    report["constant_fold"] += constant_fold(func)
    report["cse"] += common_subexpression_elimination(func)
    report["dce"] = dead_code_elimination(func)
    func.finalize()
    if verify:
        from ..ir.verifier import verify_function
        verify_function(func)
    return report
