"""Decoupled Access/Execute program slicing (paper §VII-A).

    "DAE program slicing can be implemented in the LLVM toolchain as a
    compiler pass. The pass first creates two copies of the kernel, one
    for access and one for execute. On the access slice, each memory
    instruction is augmented with a special function to either (1) push to
    the buffer for loads or, (2) replace a store value with a value from
    the buffer for stores. The execute slice is transformed similarly."

Given a kernel in SSA form, this pass produces:

* the **access slice** — all memory operations, all address computation,
  and all control flow (every slice keeps the full CFG, as in DeSC). Loads
  whose values the execute slice needs are followed by ``dae_produce_*``;
  stores whose values the execute slice computes take them from the
  store-value queue via ``dae_store_take_*``.
* the **execute slice** — value computation plus the duplicated control
  flow. Loads it needs become ``dae_consume_*``; stores become
  ``dae_store_value_*`` of the computed value.

Because both slices traverse the same control-flow path, produce/consume
pairs line up FIFO. Loads whose values feed only address computation or
control never cross the queue (DeSC's *terminal loads* stay access-side).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..ir.function import Function
from ..ir.instructions import (
    AtomicRMWInst, BranchInst, CallInst, Instruction, LoadInst, Opcode,
    PhiInst, RetInst, StoreInst,
)
from ..ir.values import Value
from ..ir.verifier import verify_function
from .clone import clone_function
from .mem2reg import dead_code_elimination

#: calls that are pure queries and may be duplicated into both slices
_DUPLICABLE_CALLS = {"tile_id", "num_tiles"}


class DAESliceError(Exception):
    """The kernel uses a construct the DAE slicer does not support."""


def _queue_suffix(ty) -> str:
    if ty.is_float:
        return "f64"
    if ty.is_integer:
        return "i64"
    raise DAESliceError(f"cannot queue values of type {ty}")


def slice_dae(func: Function) -> Tuple[Function, Function]:
    """Slice ``func`` into (access, execute) functions."""
    loads: List[LoadInst] = []
    stores: List[StoreInst] = []
    for inst in func.instructions():
        if isinstance(inst, AtomicRMWInst):
            raise DAESliceError(
                f"{func.name}: atomic operations cannot be DAE-sliced")
        if isinstance(inst, CallInst) and \
                inst.callee not in _DUPLICABLE_CALLS:
            raise DAESliceError(
                f"{func.name}: call to {inst.callee!r} cannot be DAE-sliced")
        if isinstance(inst, LoadInst):
            loads.append(inst)
        elif isinstance(inst, StoreInst):
            stores.append(inst)

    access_set = _access_closure(func)
    execute_set, consume_loads = _execute_closure(func)

    access = _build_access(func, access_set, consume_loads)
    execute = _build_execute(func, access_set, execute_set, consume_loads)
    return access, execute


# ---------------------------------------------------------------------------

def _access_closure(func: Function) -> Set[int]:
    """Instructions the access slice keeps: memory ops, their address
    chains, and all control computation."""
    kept: Set[int] = set()
    worklist: List[Instruction] = []

    def seed(value: Value) -> None:
        if isinstance(value, Instruction):
            worklist.append(value)

    for inst in func.instructions():
        if isinstance(inst, LoadInst):
            seed(inst)
        elif isinstance(inst, StoreInst):
            seed(inst.pointer)
            kept.add(id(inst))  # the store itself (value handled separately)
        elif inst.is_terminator:
            kept.add(id(inst))
            if isinstance(inst, BranchInst) and inst.condition is not None:
                seed(inst.condition)
            if isinstance(inst, RetInst) and inst.value is not None:
                seed(inst.value)

    while worklist:
        inst = worklist.pop()
        if id(inst) in kept:
            continue
        kept.add(id(inst))
        if isinstance(inst, LoadInst):
            seed(inst.pointer)      # address chain only
            continue
        for op in inst.operands:
            seed(op)
    return kept


def _execute_closure(func: Function) -> Tuple[Set[int], Set[int]]:
    """Instructions the execute slice keeps, and the loads it consumes.

    Closure stops at loads: a load needed by execute is consumed from the
    queue rather than recomputed, so its address chain stays access-only.
    """
    kept: Set[int] = set()
    consume: Set[int] = set()
    worklist: List[Instruction] = []

    def seed(value: Value) -> None:
        if isinstance(value, Instruction):
            worklist.append(value)

    for inst in func.instructions():
        if inst.is_terminator:
            kept.add(id(inst))
            if isinstance(inst, BranchInst) and inst.condition is not None:
                seed(inst.condition)
            if isinstance(inst, RetInst) and inst.value is not None:
                seed(inst.value)
        elif isinstance(inst, StoreInst):
            seed(inst.value)

    while worklist:
        inst = worklist.pop()
        if id(inst) in kept or id(inst) in consume:
            continue
        if isinstance(inst, LoadInst):
            consume.add(id(inst))
            continue
        kept.add(id(inst))
        for op in inst.operands:
            seed(op)
    return kept, consume


# ---------------------------------------------------------------------------

def _build_access(func: Function, access_set: Set[int],
                  consume_loads: Set[int]) -> Function:
    clone, mapping = clone_function(func, f"{func.name}_access")
    for block, new_block in zip(func.blocks, clone.blocks):
        for inst in list(block.instructions):
            new_inst = mapping[id(inst)]
            if isinstance(inst, StoreInst):
                value = inst.value
                if isinstance(value, Instruction) \
                        and id(value) not in access_set:
                    # value computed by the execute slice: take from queue
                    suffix = _queue_suffix(value.type)
                    take = CallInst(f"dae_store_take_{suffix}", value.type,
                                    [])
                    take.name = clone.unique_name("take")
                    take.parent = new_block
                    index = new_block.instructions.index(new_inst)
                    new_block.instructions.insert(index, take)
                    new_inst.replace_operand(mapping[id(value)], take)
                continue
            if isinstance(inst, LoadInst) and id(inst) in consume_loads:
                suffix = _queue_suffix(inst.type)
                produce = CallInst(f"dae_produce_{suffix}", _void(),
                                   [new_inst])
                produce.parent = new_block
                index = new_block.instructions.index(new_inst)
                new_block.instructions.insert(index + 1, produce)
                continue
            if inst.is_terminator or id(inst) in access_set:
                continue
            new_block.remove(new_inst)
    dead_code_elimination(clone)
    clone.finalize()
    verify_function(clone)
    clone.attributes["dae_slice"] = "access"
    return clone


def _build_execute(func: Function, access_set: Set[int],
                   execute_set: Set[int],
                   consume_loads: Set[int]) -> Function:
    clone, mapping = clone_function(func, f"{func.name}_execute")
    for block, new_block in zip(func.blocks, clone.blocks):
        for inst in list(block.instructions):
            new_inst = mapping[id(inst)]
            if isinstance(inst, LoadInst):
                if id(inst) in consume_loads:
                    suffix = _queue_suffix(inst.type)
                    consume = CallInst(f"dae_consume_{suffix}", inst.type,
                                       [])
                    consume.name = clone.unique_name("consume")
                    consume.parent = new_block
                    index = new_block.instructions.index(new_inst)
                    new_block.instructions[index] = consume
                    _replace_uses(clone, new_inst, consume)
                else:
                    new_block.remove(new_inst)
                continue
            if isinstance(inst, StoreInst):
                value = inst.value
                if isinstance(value, Instruction) \
                        and id(value) not in access_set:
                    suffix = _queue_suffix(value.type)
                    send = CallInst(f"dae_store_value_{suffix}", _void(),
                                    [mapping[id(value)]])
                    send.parent = new_block
                    index = new_block.instructions.index(new_inst)
                    new_block.instructions[index] = send
                else:
                    new_block.remove(new_inst)
                continue
            if inst.is_terminator or id(inst) in execute_set:
                continue
            new_block.remove(new_inst)
    dead_code_elimination(clone)
    clone.finalize()
    verify_function(clone)
    clone.attributes["dae_slice"] = "execute"
    return clone


def _void():
    from ..ir.types import VOID
    return VOID


def mark_decoupled(ddg) -> int:
    """Mark DeSC's asynchronous structures in an access-slice DDG.

    * loads whose value feeds only a ``dae_produce_*`` become *decoupled*:
      the load retires at issue and its memory response flows straight
      into the communication queue (terminal load buffer semantics); the
      produce itself becomes free;
    * ``dae_store_take_*`` + store pairs become *decoupled stores*: the
      store retires once its address is ready (store address buffer) and
      the write fires when the execute slice's value token arrives (store
      value buffer).

    Returns the number of nodes decoupled.
    """
    count = 0
    for node in ddg.nodes:
        if node.is_load and node.opcode is not Opcode.ATOMICRMW:
            dependents = [ddg.nodes[d] for d in node.dependent_iids]
            if len(dependents) == 1 and \
                    dependents[0].callee.startswith("dae_produce"):
                node.decoupled = True
                dependents[0].folded = True
                count += 1
        elif node.callee.startswith("dae_store_take"):
            dependents = [ddg.nodes[d] for d in node.dependent_iids]
            if len(dependents) == 1 and dependents[0].is_store:
                node.folded = True
                dependents[0].decoupled_store = True
                count += 1
    return count


def _replace_uses(func: Function, old: Value, new: Value) -> None:
    for inst in func.instructions():
        if inst is not new:
            inst.replace_operand(old, new)
