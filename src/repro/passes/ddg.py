"""Static Data Dependency Graph (DDG) generator — paper §II-A.

From a finalized IR function, builds the graph representation the timing
simulator executes: per-basic-block instruction nodes with

* **intra/cross-block data edges** — for each operand produced by another
  instruction, a static edge producer → consumer. At simulation time a
  dynamic node's parent is the *latest dynamic instance* of the static
  producer (which, by SSA dominance and the serial launching of DBBs, is
  exactly the defining instance);
* **phi incoming maps** — a phi selects its producer by the basic block the
  control-flow trace actually arrived from;
* **terminator marking** — terminator completion launches the next DBB
  (paper rule 3).

The DDG is a pure-data structure (no references back into the IR except
node metadata) so the simulator can be driven from it and a trace alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..frontend import intrinsics as intrin
from ..ir.function import Function
from ..ir.instructions import (
    CallInst, Instruction, OpClass, Opcode, PhiInst,
)


@dataclass
class DDGNode:
    """One static instruction in the dependence graph."""

    iid: int
    opcode: Opcode
    opclass: OpClass
    bid: int
    #: producers of non-phi operands: (producer_iid, ...) — includes only
    #: operands that are instructions (constants/arguments are free)
    operand_iids: Tuple[int, ...] = ()
    #: for phi nodes: predecessor bid -> producer iid (or None for
    #: constant/argument incomings)
    phi_incoming: Dict[int, Optional[int]] = field(default_factory=dict)
    is_terminator: bool = False
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    #: bytes accessed for memory ops
    access_size: int = 0
    #: producer of the address operand for memory ops (None when the
    #: address comes directly from an argument/constant) — used by the MAO
    #: to decide when an access's address is *resolved*
    pointer_operand_iid: Optional[int] = None
    #: callee name for call instructions ("" otherwise)
    callee: str = ""
    #: timing class for intrinsic calls ("" for non-calls)
    intrinsic_timing: str = ""
    #: static consumers (iids) of this node's result, for completion wakeups
    dependent_iids: Tuple[int, ...] = ()
    #: ISA-folded (paper §VI-A: "simulating pairs of load and
    #: getelementptr as one instruction for x86"): the node is free — it
    #: completes the moment its parents do, consumes no issue slot, and is
    #: not counted as an instruction. Set by ISA-tuning passes.
    folded: bool = False
    #: DAE decoupled load (DeSC terminal-load-buffer semantics): the load
    #: issues its memory request and immediately retires from the window;
    #: the response is deposited directly into the pair's load queue. Set
    #: by :func:`repro.passes.dae_slicing.mark_decoupled`.
    decoupled: bool = False
    #: DAE decoupled store (DeSC store address/value buffers): the store
    #: retires once its address is ready; the write fires when the value
    #: token arrives from the execute slice's store-value queue.
    decoupled_store: bool = False
    #: ``is_load or is_store``, materialized at build time — the timing
    #: simulator reads this on every issue/complete, so it must be a
    #: plain attribute, not a computed property
    is_memory: bool = False


@dataclass
class DDGBlock:
    """Static metadata for one basic block."""

    bid: int
    name: str
    #: node iids in program order (phis first)
    node_iids: List[int]
    #: number of leading phi nodes
    num_phis: int
    terminator_iid: int
    successor_bids: Tuple[int, ...]


@dataclass
class StaticDDG:
    """The full static dependence graph of one kernel function."""

    function: str
    nodes: List[DDGNode]          # indexed by iid (contiguous)
    blocks: List[DDGBlock]        # indexed by bid (contiguous)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def block_of(self, bid: int) -> DDGBlock:
        return self.blocks[bid]


def build_ddg(func: Function) -> StaticDDG:
    """Construct the static DDG for a finalized function."""
    if not func.finalized:
        func.finalize()

    nodes: List[Optional[DDGNode]] = [None] * func.num_instructions
    dependents: Dict[int, List[int]] = {}

    for block in func.blocks:
        for inst in block.instructions:
            node = _make_node(inst, block.bid)
            nodes[inst.iid] = node
            for producer in node.operand_iids:
                dependents.setdefault(producer, []).append(inst.iid)
            for producer in node.phi_incoming.values():
                if producer is not None:
                    dependents.setdefault(producer, []).append(inst.iid)

    for iid, consumer_list in dependents.items():
        nodes[iid].dependent_iids = tuple(sorted(set(consumer_list)))

    blocks = []
    for block in func.blocks:
        iids = [inst.iid for inst in block.instructions]
        term = block.terminator
        blocks.append(DDGBlock(
            bid=block.bid,
            name=block.name,
            node_iids=iids,
            num_phis=len(block.phis),
            terminator_iid=term.iid,
            successor_bids=tuple(s.bid for s in block.successors),
        ))

    return StaticDDG(func.name, [n for n in nodes], blocks)


def _make_node(inst: Instruction, bid: int) -> DDGNode:
    if isinstance(inst, PhiInst):
        incoming: Dict[int, Optional[int]] = {}
        for value, pred in zip(inst.operands, inst.incoming_blocks):
            producer = value.iid if isinstance(value, Instruction) else None
            incoming[pred.bid] = producer
        return DDGNode(inst.iid, inst.opcode, inst.opclass, bid,
                       phi_incoming=incoming)

    operand_iids = tuple(
        op.iid for op in inst.operands if isinstance(op, Instruction))
    node = DDGNode(inst.iid, inst.opcode, inst.opclass, bid,
                   operand_iids=operand_iids)
    node.is_terminator = inst.is_terminator
    node.is_branch = inst.opcode is Opcode.BR
    pointer = None
    if inst.opcode in (Opcode.LOAD, Opcode.ATOMICRMW):
        node.is_load = True
        node.access_size = inst.type.size
        pointer = inst.operands[0]
    if inst.opcode is Opcode.STORE:
        node.is_store = True
        node.access_size = inst.operands[0].type.size
        pointer = inst.operands[1]
    if inst.opcode is Opcode.ATOMICRMW:
        node.is_store = True
    if isinstance(pointer, Instruction):
        node.pointer_operand_iid = pointer.iid
    if isinstance(inst, CallInst):
        node.callee = inst.callee
        info = intrin.lookup(inst.callee)
        node.intrinsic_timing = info.timing if info else ""
    node.is_memory = node.is_load or node.is_store
    return node
