"""``repro.passes`` — analysis and transformation passes over the mini-IR."""

from .ddg import DDGBlock, DDGNode, StaticDDG, build_ddg
from .dominators import DominatorTree
from .mem2reg import dead_code_elimination, promote_allocas
from .optimize import (
    common_subexpression_elimination, constant_fold,
    loop_invariant_code_motion, optimize,
)

__all__ = [
    "DDGBlock", "DDGNode", "StaticDDG", "build_ddg",
    "DominatorTree",
    "dead_code_elimination", "promote_allocas",
    "common_subexpression_elimination", "constant_fold",
    "loop_invariant_code_motion", "optimize",
]
