"""Dominator analysis for mini-IR functions.

Implements the Cooper–Harvey–Kennedy iterative algorithm for immediate
dominators and the standard dominance-frontier computation. Used by the
mem2reg pass to place phi nodes, and available to any analysis that needs
dominance information.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function


class DominatorTree:
    """Immediate-dominator tree plus dominance frontiers for a function."""

    def __init__(self, func: Function):
        self.function = func
        #: reverse-postorder of reachable blocks
        self.order: List[BasicBlock] = _reverse_postorder(func)
        self._rpo_index: Dict[int, int] = {
            id(b): i for i, b in enumerate(self.order)}
        #: immediate dominator of each reachable block (entry maps to itself)
        self.idom: Dict[int, BasicBlock] = {}
        #: dominator-tree children
        self.children: Dict[int, List[BasicBlock]] = {}
        #: dominance frontier of each block
        self.frontier: Dict[int, Set[int]] = {}
        self._blocks_by_id: Dict[int, BasicBlock] = {
            id(b): b for b in self.order}
        self._compute_idoms()
        self._compute_frontiers()

    # ------------------------------------------------------------------
    def _compute_idoms(self) -> None:
        entry = self.function.entry
        self.idom[id(entry)] = entry
        changed = True
        while changed:
            changed = False
            for block in self.order[1:]:
                preds = [p for p in block.predecessors
                         if id(p) in self._rpo_index]
                processed = [p for p in preds if id(p) in self.idom]
                if not processed:
                    continue
                new_idom = processed[0]
                for p in processed[1:]:
                    new_idom = self._intersect(p, new_idom)
                if self.idom.get(id(block)) is not new_idom:
                    self.idom[id(block)] = new_idom
                    changed = True
        for block in self.order:
            self.children.setdefault(id(block), [])
        for block in self.order[1:]:
            parent = self.idom[id(block)]
            self.children[id(parent)].append(block)

    def _intersect(self, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while self._rpo_index[id(a)] > self._rpo_index[id(b)]:
                a = self.idom[id(a)]
            while self._rpo_index[id(b)] > self._rpo_index[id(a)]:
                b = self.idom[id(b)]
        return a

    def _compute_frontiers(self) -> None:
        for block in self.order:
            self.frontier[id(block)] = set()
        for block in self.order:
            preds = [p for p in block.predecessors
                     if id(p) in self._rpo_index]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner = pred
                while runner is not self.idom[id(block)]:
                    self.frontier[id(runner)].add(id(block))
                    runner = self.idom[id(runner)]

    # ------------------------------------------------------------------
    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        entry = self.function.entry
        node = b
        while True:
            if node is a:
                return True
            if node is entry:
                return False
            node = self.idom[id(node)]

    def frontier_of(self, block: BasicBlock) -> List[BasicBlock]:
        return self._in_rpo(self.frontier[id(block)])

    def iterated_frontier(self, blocks: List[BasicBlock]) -> List[BasicBlock]:
        """Iterated dominance frontier of a set of blocks (for phi placement).

        Returned in reverse-postorder: callers place phis (and number
        SSA names) in this order, and iterating the underlying id() sets
        directly would make the emitted IR text vary run to run —
        semantically identical, but with shuffled phi names, which
        defeats content-addressed caching of compiled artifacts."""
        result: Set[int] = set()
        worklist = list(blocks)
        while worklist:
            block = worklist.pop()
            for bid in self.frontier[id(block)]:
                if bid not in result:
                    result.add(bid)
                    worklist.append(self._blocks_by_id[bid])
        return self._in_rpo(result)

    def _in_rpo(self, block_ids: Set[int]) -> List[BasicBlock]:
        return [self._blocks_by_id[bid]
                for bid in sorted(block_ids,
                                  key=self._rpo_index.__getitem__)]


def _reverse_postorder(func: Function) -> List[BasicBlock]:
    seen: Set[int] = set()
    postorder: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors))]
        seen.add(id(block))
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if id(succ) not in seen:
                    seen.add(id(succ))
                    stack.append((succ, iter(succ.successors)))
                    advanced = True
                    break
            if not advanced:
                postorder.append(node)
                stack.pop()

    visit(func.entry)
    return list(reversed(postorder))
