"""mem2reg: promote scalar ``alloca`` slots to SSA registers.

The frontend lowers every local scalar variable to an ``alloca`` plus
``load``/``store`` traffic (exactly as Clang does at ``-O0``). This pass
rewrites those slots into SSA form — placing phi nodes at the iterated
dominance frontier of the stores and renaming uses along the dominator
tree — so that simulated kernels contain only *real* memory operations
(array traffic through ``getelementptr``), not register spills.

Only allocas whose address never escapes (used solely as the pointer of
loads/stores) are promoted; any other alloca is left in place.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst, Instruction, LoadInst, PhiInst, StoreInst,
)
from ..ir.values import Constant, Value
from .dominators import DominatorTree


def _undef_for(alloca: AllocaInst) -> Constant:
    """Value observed by a (buggy) read-before-write; zero of the slot type."""
    ty = alloca.element_type
    return Constant(ty, 0 if ty.is_integer else 0.0)


def _promotable(func: Function, alloca: AllocaInst) -> bool:
    for inst in func.instructions():
        if inst is alloca:
            continue
        for op in inst.operands:
            if op is alloca:
                if isinstance(inst, LoadInst):
                    continue
                if isinstance(inst, StoreInst) and inst.pointer is alloca:
                    continue
                return False  # address escapes (gep, call arg, stored value…)
    return True


def promote_allocas(func: Function) -> int:
    """Run mem2reg on ``func``; returns the number of allocas promoted."""
    allocas = [i for i in func.instructions() if isinstance(i, AllocaInst)]
    targets = [a for a in allocas if _promotable(func, a)]
    if not targets:
        return 0

    dom = DominatorTree(func)
    reachable = {id(b) for b in dom.order}

    # 1. place empty phis at the iterated dominance frontier of each store
    phis: Dict[int, AllocaInst] = {}  # id(phi) -> alloca it merges
    for alloca in targets:
        def_blocks: List[BasicBlock] = []
        for inst in func.instructions():
            if isinstance(inst, StoreInst) and inst.pointer is alloca:
                if id(inst.parent) in reachable:
                    def_blocks.append(inst.parent)
        for block in dom.iterated_frontier(def_blocks):
            phi = PhiInst(alloca.element_type)
            phi.name = func.unique_name(alloca.name or "m2r")
            block.insert_front(phi)
            phis[id(phi)] = alloca

    # 2. rename along the dominator tree
    stacks: Dict[int, List[Value]] = {id(a): [] for a in targets}
    target_ids = set(stacks)

    def current(alloca: AllocaInst) -> Value:
        stack = stacks[id(alloca)]
        return stack[-1] if stack else _undef_for(alloca)

    def rename(block: BasicBlock) -> None:
        pushed: List[int] = []
        for inst in list(block.instructions):
            if isinstance(inst, PhiInst) and id(inst) in phis:
                alloca = phis[id(inst)]
                stacks[id(alloca)].append(inst)
                pushed.append(id(alloca))
            elif isinstance(inst, LoadInst) and id(inst.pointer) in target_ids:
                alloca = inst.pointer
                replacement = current(alloca)
                _replace_uses(func, inst, replacement)
                block.remove(inst)
            elif isinstance(inst, StoreInst) and id(inst.pointer) in target_ids:
                alloca = inst.pointer
                stacks[id(alloca)].append(inst.value)
                pushed.append(id(alloca))
                block.remove(inst)
        for succ in block.successors:
            for phi in succ.phis:
                if id(phi) in phis:
                    phi.add_incoming(current(phis[id(phi)]), block)
        for child in dom.children[id(block)]:
            rename(child)
        for alloca_id in pushed:
            stacks[alloca_id].pop()

    rename(func.entry)

    # 3. drop the allocas themselves
    for alloca in targets:
        alloca.parent.remove(alloca)

    _prune_degenerate_phis(func)
    return len(targets)


def _replace_uses(func: Function, old: Value, new: Value) -> None:
    for inst in func.instructions():
        inst.replace_operand(old, new)


def _prune_degenerate_phis(func: Function) -> None:
    """Remove phis that merge a single distinct value (or only themselves)."""
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            for phi in list(block.phis):
                distinct = [v for v in phi.operands if v is not phi]
                if distinct and all(v is distinct[0] for v in distinct):
                    _replace_uses(func, phi, distinct[0])
                    block.remove(phi)
                    changed = True


def dead_code_elimination(func: Function) -> int:
    """Remove side-effect-free instructions whose results are unused."""
    removed = 0
    changed = True
    while changed:
        changed = False
        used = set()
        for inst in func.instructions():
            for op in inst.operands:
                used.add(id(op))
        for block in func.blocks:
            for inst in list(block.instructions):
                if inst.is_terminator or inst.is_memory:
                    continue
                if inst.opcode.value in ("call", "store"):
                    continue
                if isinstance(inst, AllocaInst):
                    # keep allocas that are still referenced
                    if id(inst) in used:
                        continue
                    block.remove(inst)
                    removed += 1
                    changed = True
                    continue
                if id(inst) not in used:
                    block.remove(inst)
                    removed += 1
                    changed = True
    return removed
