"""Function cloning with value remapping — infrastructure for transform
passes that produce new functions (e.g. DAE slicing)."""

from __future__ import annotations

from typing import Dict, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst, AtomicRMWInst, BinaryInst, BranchInst, CallInst, CastInst,
    CmpInst, GEPInst, Instruction, LoadInst, Opcode, PhiInst, RetInst,
    SelectInst, StoreInst,
)
from ..ir.values import Value


def clone_function(func: Function, new_name: str
                   ) -> Tuple[Function, Dict[int, Value]]:
    """Deep-copy ``func`` as ``new_name``.

    Returns the clone and a mapping ``id(old value) -> new value`` covering
    arguments, blocks, and instructions. Constants and globals are shared.
    """
    clone = Function(new_name, [(a.name, a.type) for a in func.args],
                     func.return_type)
    clone.attributes = dict(func.attributes)
    mapping: Dict[int, Value] = {}
    for old_arg, new_arg in zip(func.args, clone.args):
        mapping[id(old_arg)] = new_arg

    block_map: Dict[int, BasicBlock] = {}
    for block in func.blocks:
        new_block = clone.add_block(block.name)
        block_map[id(block)] = new_block
        mapping[id(block)] = new_block

    # first pass: clone instructions (phi incomings deferred)
    deferred_phis = []
    for block in func.blocks:
        new_block = block_map[id(block)]
        for inst in block.instructions:
            new_inst = _clone_inst(inst, mapping, block_map)
            new_inst.name = inst.name
            new_inst.parent = new_block
            new_block.instructions.append(new_inst)
            mapping[id(inst)] = new_inst
            if isinstance(inst, PhiInst):
                deferred_phis.append((inst, new_inst))

    # second pass: phi incomings (may reference later blocks)
    for old_phi, new_phi in deferred_phis:
        for value, pred in zip(old_phi.operands, old_phi.incoming_blocks):
            new_value = mapping.get(id(value), value)
            new_phi.add_incoming(new_value, block_map[id(pred)])

    return clone, mapping


def _map(value: Value, mapping: Dict[int, Value]) -> Value:
    if isinstance(value, Instruction):
        try:
            return mapping[id(value)]
        except KeyError:
            raise AssertionError(
                f"operand {value.short()} used before definition while "
                f"cloning — block order is not topological") from None
    return mapping.get(id(value), value)


def _clone_inst(inst: Instruction, mapping: Dict[int, Value],
                block_map: Dict[int, BasicBlock]) -> Instruction:
    if isinstance(inst, PhiInst):
        return PhiInst(inst.type)
    if isinstance(inst, BranchInst):
        targets = [block_map[id(t)] for t in inst.targets]
        if inst.is_conditional:
            return BranchInst(targets[0], _map(inst.condition, mapping),
                              targets[1])
        return BranchInst(targets[0])
    if isinstance(inst, RetInst):
        value = inst.value
        return RetInst(None if value is None else _map(value, mapping))
    if isinstance(inst, LoadInst):
        return LoadInst(_map(inst.pointer, mapping))
    if isinstance(inst, StoreInst):
        return StoreInst(_map(inst.value, mapping),
                         _map(inst.pointer, mapping))
    if isinstance(inst, GEPInst):
        return GEPInst(_map(inst.pointer, mapping),
                       _map(inst.index, mapping))
    if isinstance(inst, AllocaInst):
        return AllocaInst(inst.element_type)
    if isinstance(inst, AtomicRMWInst):
        return AtomicRMWInst(inst.operation, _map(inst.pointer, mapping),
                             _map(inst.value, mapping))
    if isinstance(inst, CmpInst):
        return CmpInst(inst.opcode, inst.predicate,
                       _map(inst.operands[0], mapping),
                       _map(inst.operands[1], mapping))
    if isinstance(inst, CastInst):
        return CastInst(inst.opcode, _map(inst.operands[0], mapping),
                        inst.type)
    if isinstance(inst, SelectInst):
        c, t, f = (_map(op, mapping) for op in inst.operands)
        return SelectInst(c, t, f)
    if isinstance(inst, CallInst):
        return CallInst(inst.callee, inst.type,
                        [_map(a, mapping) for a in inst.operands])
    if isinstance(inst, BinaryInst):
        return BinaryInst(inst.opcode, _map(inst.lhs, mapping),
                          _map(inst.rhs, mapping))
    raise TypeError(f"cannot clone {type(inst).__name__}")
