"""CPU kernels (kernel dialect) for neural-network ops.

These are the software fallbacks used when an op has no accelerator
(paper §VII-C: "we do not have accelerators for backpropagation of
convolutional layers", GraphSage's "random walk and embedding steps are
not handled by an accelerator"). They also serve as scaled-down proxies
for analytic extrapolation in :mod:`repro.nn.mapping`.
"""

from __future__ import annotations


def cpu_conv2d(X: 'f64*', W: 'f64*', Y: 'f64*', h: int, w: int, cin: int,
               cout: int, kh: int, kw: int):
    """Valid convolution, NHWC-ish layout flattened."""
    oh = h - kh + 1
    ow = w - kw + 1
    for i in range(oh):
        for j in range(ow):
            for co in range(cout):
                acc = 0.0
                for di in range(kh):
                    for dj in range(kw):
                        for ci in range(cin):
                            xv = X[((i + di) * w + (j + dj)) * cin + ci]
                            wv = W[((di * kw + dj) * cin + ci) * cout + co]
                            acc = acc + xv * wv
                Y[(i * ow + j) * cout + co] = acc


def cpu_gemm(A: 'f64*', B: 'f64*', C: 'f64*', n: int, m: int, k: int):
    for i in range(n):
        for j in range(m):
            acc = 0.0
            for p in range(k):
                acc = acc + A[i * k + p] * B[p * m + j]
            C[i * m + j] = acc


def cpu_elementwise(A: 'f64*', B: 'f64*', C: 'f64*', n: int):
    for i in range(n):
        C[i] = A[i] * B[i]


def cpu_relu(X: 'f64*', Y: 'f64*', n: int):
    for i in range(n):
        v = X[i]
        if v > 0.0:
            Y[i] = v
        else:
            Y[i] = 0.0


def cpu_batchnorm(X: 'f64*', Y: 'f64*', n: int):
    total = 0.0
    for i in range(n):
        total = total + X[i]
    mean = total / float(n)
    var = 0.0
    for i in range(n):
        d = X[i] - mean
        var = var + d * d
    scale = 1.0 / sqrtf(var / float(n) + 0.00001)
    for i in range(n):
        Y[i] = (X[i] - mean) * scale


def cpu_pool(X: 'f64*', Y: 'f64*', h: int, w: int, c: int, stride: int):
    oh = h // stride
    ow = w // stride
    for i in range(oh):
        for j in range(ow):
            for ch in range(c):
                best = X[(i * stride * w + j * stride) * c + ch]
                for di in range(stride):
                    for dj in range(stride):
                        v = X[((i * stride + di) * w
                               + (j * stride + dj)) * c + ch]
                        if v > best:
                            best = v
                Y[(i * ow + j) * c + ch] = best


def cpu_embedding_gather(table: 'f64*', indices: 'i64*', out: 'f64*',
                         count: int, dim: int):
    """Gather rows of an embedding table (irregular reads)."""
    for i in range(count):
        row = indices[i]
        for d in range(dim):
            out[i * dim + d] = table[row * dim + d]


def cpu_random_walk(row_ptr: 'i64*', nbr: 'i64*', starts: 'i64*',
                    visited: 'i64*', nwalks: int, walk_len: int):
    """GraphSage-style random walks: data-dependent pointer chasing.

    Pseudo-random step selection via a linear congruential generator so
    the kernel is deterministic and self-contained.
    """
    state = 88172645463325252
    for wk in range(nwalks):
        v = starts[wk]
        for s in range(walk_len):
            visited[wk * walk_len + s] = v
            begin = row_ptr[v]
            degree = row_ptr[v + 1] - begin
            if degree > 0:
                # LCG step; the multiply wraps at 64 bits (i64 semantics),
                # so mask the sign bit off before taking the remainder
                state = (state * 6364136223846793005
                         + 1442695040888963407) & 9223372036854775807
                v = nbr[begin + state % degree]
