"""``repro.nn`` — Keras-like front-end and NN performance modeling
(paper §VII-C)."""

from .layers import (
    Aggregate, BatchNorm, Conv2D, Dense, Dropout, Embedding, Flatten, Layer, MaxPool,
    Op, RandomWalk, ReLU, op_flops,
)
from .lower import LoweredModel, LoweringError, convnet_inference, \
    lower_inference
from .mapping import OpCost, SystemCost, TrainingCostModel
from .model import PAPER_MODELS, Sequential, convnet, graphsage, recsys

__all__ = [
    "Aggregate", "BatchNorm", "Conv2D", "Dense", "Dropout", "Embedding", "Flatten",
    "Layer", "MaxPool", "Op", "RandomWalk", "ReLU", "op_flops",
    "LoweredModel", "LoweringError", "convnet_inference",
    "lower_inference",
    "OpCost", "SystemCost", "TrainingCostModel",
    "PAPER_MODELS", "Sequential", "convnet", "graphsage", "recsys",
]
