"""Keras-like layer API (paper §VII-C).

A thin, declarative layer vocabulary whose ``training_ops`` lowering
produces the op stream MosaicSim costs — accelerator invocations for ops
with hardware support, CPU kernels otherwise. Mirrors the paper's Keras
TensorFlow front-end that "recognize[s] Keras function names in the source
code and map[s] them to LLVM accelerator invocation calls".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Op:
    """One costed operation of a training step."""

    kind: str                 # conv2d | gemm | dense | elementwise | relu |
    #                           batchnorm | pool | embedding | random_walk
    params: Dict[str, int]
    #: False when no accelerator exists for this op (it always runs on CPU)
    accelerable: bool = True
    #: descriptive tag ("fwd"/"bwd"), for reports
    phase: str = "fwd"

    @property
    def flops(self) -> int:
        return op_flops(self.kind, self.params)


def op_flops(kind: str, p: Dict[str, int]) -> int:
    if kind == "conv2d":
        oh, ow = p["h"] - p["kh"] + 1, p["w"] - p["kw"] + 1
        return 2 * oh * ow * p["cout"] * p["kh"] * p["kw"] * p["cin"]
    if kind in ("gemm",):
        return 2 * p["n"] * p["m"] * p["k"]
    if kind == "dense":
        return 2 * p["batch"] * p["din"] * p["dout"]
    if kind in ("elementwise", "relu"):
        return p["n"]
    if kind == "batchnorm":
        return 3 * p["n"]
    if kind == "pool":
        return p["h"] * p["w"] * p["c"]
    if kind == "embedding":
        return p["count"] * p["dim"]
    if kind == "random_walk":
        return 8 * p["nwalks"] * p["walk_len"]
    raise KeyError(f"unknown op kind {kind!r}")


class Layer:
    """Base layer: maps an input shape to an output shape and emits the
    training ops (forward + backward) for one batch."""

    name = "layer"

    def output_shape(self, shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return shape

    def training_ops(self, shape: Tuple[int, ...],
                     batch: int) -> List[Op]:
        raise NotImplementedError


def _elems(shape: Tuple[int, ...]) -> int:
    n = 1
    for d in shape:
        n *= d
    return n


class Conv2D(Layer):
    """Convolution; forward accelerated, backward has no accelerator
    (paper: "we do not have accelerators for backpropagation of
    convolutional layers")."""

    name = "conv2d"

    def __init__(self, filters: int, kernel: Tuple[int, int] = (3, 3),
                 padded: bool = True):
        self.filters = filters
        self.kh, self.kw = kernel
        self.padded = padded

    def output_shape(self, shape):
        h, w, c = shape
        if self.padded:
            return (h, w, self.filters)
        return (h - self.kh + 1, w - self.kw + 1, self.filters)

    def training_ops(self, shape, batch):
        h, w, c = shape
        params = {"h": h, "w": w, "cin": c, "cout": self.filters,
                  "kh": self.kh, "kw": self.kw, "batch": batch}
        return [
            Op("conv2d", params, accelerable=True, phase="fwd"),
            # dX and dW gradients: two conv-shaped passes, CPU-only
            Op("conv2d", params, accelerable=False, phase="bwd"),
            Op("conv2d", params, accelerable=False, phase="bwd"),
        ]


class Dense(Layer):
    name = "dense"

    def __init__(self, units: int):
        self.units = units

    def output_shape(self, shape):
        return (self.units,)

    def training_ops(self, shape, batch):
        din = _elems(shape)
        fwd = {"batch": batch, "din": din, "dout": self.units}
        return [
            Op("dense", fwd, phase="fwd"),
            # dX = dY @ W^T and dW = X^T @ dY: two GEMMs, accelerated
            Op("gemm", {"n": batch, "m": din, "k": self.units}, phase="bwd"),
            Op("gemm", {"n": din, "m": self.units, "k": batch}, phase="bwd"),
        ]


class _PointwiseLayer(Layer):
    kind = "elementwise"

    def training_ops(self, shape, batch):
        n = _elems(shape) * batch
        return [
            Op(self.kind, {"n": n}, phase="fwd"),
            Op("elementwise", {"n": n}, phase="bwd"),
        ]


class ReLU(_PointwiseLayer):
    name = "relu"
    kind = "relu"


class BatchNorm(_PointwiseLayer):
    name = "batchnorm"
    kind = "batchnorm"


class Dropout(_PointwiseLayer):
    name = "dropout"
    kind = "elementwise"

    def __init__(self, rate: float = 0.5):
        self.rate = rate


class MaxPool(Layer):
    name = "maxpool"

    def __init__(self, stride: int = 2):
        self.stride = stride

    def output_shape(self, shape):
        h, w, c = shape
        return (h // self.stride, w // self.stride, c)

    def training_ops(self, shape, batch):
        h, w, c = shape
        return [
            Op("pool", {"h": h, "w": w, "c": c, "stride": self.stride,
                        "batch": batch}, phase="fwd"),
            Op("elementwise", {"n": _elems(shape) * batch}, phase="bwd"),
        ]


class Flatten(Layer):
    name = "flatten"

    def output_shape(self, shape):
        return (_elems(shape),)

    def training_ops(self, shape, batch):
        return []


class Embedding(Layer):
    """Table lookup; irregular gather, CPU-only (paper: GraphSage's
    embedding step is not handled by an accelerator)."""

    name = "embedding"

    def __init__(self, vocab: int, dim: int):
        self.vocab = vocab
        self.dim = dim

    def output_shape(self, shape):
        return (shape[0], self.dim)

    def training_ops(self, shape, batch):
        count = shape[0] * batch
        return [
            Op("embedding", {"count": count, "dim": self.dim,
                             "vocab": self.vocab},
               accelerable=False, phase="fwd"),
            Op("embedding", {"count": count, "dim": self.dim,
                             "vocab": self.vocab},
               accelerable=False, phase="bwd"),
        ]


class Aggregate(Layer):
    """CBOW-style mean aggregation over sampled-neighbour embeddings:
    (n, dim) -> (dim,). Element-wise accumulate, accelerable."""

    name = "aggregate"

    def output_shape(self, shape):
        return (shape[-1],)

    def training_ops(self, shape, batch):
        n = _elems(shape) * batch
        return [
            Op("elementwise", {"n": n}, phase="fwd"),
            Op("elementwise", {"n": n}, phase="bwd"),
        ]


class RandomWalk(Layer):
    """GraphSage neighbourhood sampling; pointer chasing, CPU-only."""

    name = "random_walk"

    def __init__(self, walk_len: int, graph_vertices: int,
                 avg_degree: int = 8):
        self.walk_len = walk_len
        self.graph_vertices = graph_vertices
        self.avg_degree = avg_degree

    def output_shape(self, shape):
        return (shape[0] * self.walk_len,)

    def training_ops(self, shape, batch):
        nwalks = shape[0] * batch
        return [
            Op("random_walk", {"nwalks": nwalks, "walk_len": self.walk_len,
                               "vertices": self.graph_vertices,
                               "degree": self.avg_degree},
               accelerable=False, phase="fwd"),
        ]
