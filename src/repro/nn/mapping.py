"""Training-step cost model: maps NN ops onto CPU simulation or
accelerator performance models (paper §VII-C / Figure 14).

CPU costs come from actually simulating a scaled-down proxy of each op
kind on the core model, then extrapolating by the op's FLOP count — the
proxies exercise the same kernels a full run would, at tractable sizes.
Accelerator costs come from the §IV-B generic performance models. The
comparison of Figure 14 is an out-of-order server core with no
accelerators versus an SoC with 8 accelerator instances, in energy-delay
product.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..harness.runner import simulate
from ..harness.systems import ooo_core, xeon_hierarchy
from ..ir.types import F64, I64
from ..sim.accelerator.library import DESIGN_FACTORIES
from ..sim.accelerator.perf_model import GenericPerformanceModel
from ..sim.config import CoreConfig, MemoryHierarchyConfig
from ..trace.memory import SimMemory
from ..workloads import datasets
from . import ops as cpu_ops
from .layers import Op, op_flops
from .model import Sequential


@dataclass
class OpCost:
    seconds: float
    energy_j: float
    on_accelerator: bool

    @property
    def edp(self) -> float:
        return self.seconds * self.energy_j


@dataclass
class SystemCost:
    seconds: float = 0.0
    energy_j: float = 0.0
    breakdown: Dict[str, float] = None

    @property
    def edp(self) -> float:
        return self.seconds * self.energy_j


def _proxy_workload(kind: str):
    """Build (kernel, args, flops) for a small proxy of ``kind``."""
    mem = SimMemory()
    if kind == "conv2d":
        h = w = 8
        cin = cout = 2
        kh = kw = 3
        p = {"h": h, "w": w, "cin": cin, "cout": cout, "kh": kh, "kw": kw}
        X = mem.alloc(h * w * cin, F64, "X",
                      init=np.random.default_rng(0).uniform(size=h * w * cin))
        W = mem.alloc(kh * kw * cin * cout, F64, "W",
                      init=np.ones(kh * kw * cin * cout))
        oh, ow = h - kh + 1, w - kw + 1
        Y = mem.alloc(oh * ow * cout, F64, "Y")
        return cpu_ops.cpu_conv2d, [X, W, Y, h, w, cin, cout, kh, kw], \
            op_flops("conv2d", p)
    if kind in ("gemm", "dense"):
        n = 8
        A = mem.alloc(n * n, F64, "A", init=np.ones(n * n))
        B = mem.alloc(n * n, F64, "B", init=np.ones(n * n))
        C = mem.alloc(n * n, F64, "C")
        return cpu_ops.cpu_gemm, [A, B, C, n, n, n], \
            op_flops("gemm", {"n": n, "m": n, "k": n})
    if kind == "elementwise":
        n = 512
        A = mem.alloc(n, F64, "A", init=np.ones(n))
        B = mem.alloc(n, F64, "B", init=np.ones(n))
        C = mem.alloc(n, F64, "C")
        return cpu_ops.cpu_elementwise, [A, B, C, n], n
    if kind == "relu":
        n = 512
        X = mem.alloc(n, F64, "X",
                      init=np.random.default_rng(0).uniform(-1, 1, n))
        Y = mem.alloc(n, F64, "Y")
        return cpu_ops.cpu_relu, [X, Y, n], n
    if kind == "batchnorm":
        n = 512
        X = mem.alloc(n, F64, "X",
                      init=np.random.default_rng(0).uniform(-1, 1, n))
        Y = mem.alloc(n, F64, "Y")
        return cpu_ops.cpu_batchnorm, [X, Y, n], 3 * n
    if kind == "pool":
        h = w = 8
        c = 4
        X = mem.alloc(h * w * c, F64, "X",
                      init=np.random.default_rng(0).uniform(size=h * w * c))
        Y = mem.alloc((h // 2) * (w // 2) * c, F64, "Y")
        return cpu_ops.cpu_pool, [X, Y, h, w, c, 2], h * w * c
    if kind == "embedding":
        count, dim, vocab = 128, 8, 512
        table = mem.alloc(vocab * dim, F64, "table",
                          init=np.ones(vocab * dim))
        idx = mem.alloc(count, I64, "idx",
                        init=np.random.default_rng(0).integers(
                            0, vocab, count))
        out = mem.alloc(count * dim, F64, "out")
        return cpu_ops.cpu_embedding_gather, [table, idx, out, count, dim], \
            count * dim
    if kind == "random_walk":
        nwalks, walk_len = 16, 8
        row_ptr, nbr = datasets.random_graph_csr(256, 8, seed=0)
        RP = mem.alloc(len(row_ptr), I64, "rp", init=row_ptr)
        NB = mem.alloc(len(nbr), I64, "nb", init=nbr)
        ST = mem.alloc(nwalks, I64, "st",
                       init=np.arange(nwalks, dtype=np.int64))
        VI = mem.alloc(nwalks * walk_len, I64, "vi")
        return cpu_ops.cpu_random_walk, [RP, NB, ST, VI, nwalks, walk_len], \
            8 * nwalks * walk_len
    raise KeyError(f"no CPU proxy for op kind {kind!r}")


class TrainingCostModel:
    """Costs one training step of a model on (a) a CPU-only system and
    (b) an accelerator SoC, in runtime / energy / EDP."""

    def __init__(self, cpu_core: Optional[CoreConfig] = None,
                 hierarchy: Optional[MemoryHierarchyConfig] = None,
                 num_accel_instances: int = 8,
                 accel_bandwidth_gbps: float = 16.0,
                 accel_plm_bytes: int = 128 * 1024):
        self.cpu_core = cpu_core if cpu_core is not None else ooo_core()
        self.hierarchy = hierarchy if hierarchy is not None \
            else xeon_hierarchy()
        self.num_accel_instances = num_accel_instances
        self.accel_bandwidth_gbps = accel_bandwidth_gbps
        self.accel_plm_bytes = accel_plm_bytes
        self._proxy_cache: Dict[str, Tuple[float, float, int]] = {}
        self._accel_cache: Dict[str, GenericPerformanceModel] = {}

    # -- CPU side ----------------------------------------------------------
    def _proxy(self, kind: str) -> Tuple[float, float, int]:
        """(seconds, joules, flops) of the simulated proxy for ``kind``."""
        cached = self._proxy_cache.get(kind)
        if cached is not None:
            return cached
        kernel, args, flops = _proxy_workload(kind)
        stats = simulate(kernel, args, core=self.cpu_core,
                         hierarchy=self.hierarchy)
        result = (stats.runtime_seconds, stats.energy_joules, flops)
        self._proxy_cache[kind] = result
        return result

    def cpu_cost(self, op: Op) -> OpCost:
        seconds, joules, proxy_flops = self._proxy(op.kind)
        scale = op.flops / proxy_flops
        return OpCost(seconds * scale, joules * scale, on_accelerator=False)

    # -- accelerator side ----------------------------------------------------
    def _accel_model(self, kind: str) -> GenericPerformanceModel:
        model = self._accel_cache.get(kind)
        if model is None:
            design_kind = "sgemm" if kind == "gemm" else kind
            design = DESIGN_FACTORIES[design_kind](self.accel_plm_bytes)
            model = GenericPerformanceModel(design,
                                            self.accel_bandwidth_gbps)
            self._accel_cache[kind] = model
        return model

    def accel_cost(self, op: Op) -> OpCost:
        model = self._accel_model(op.kind)
        params = dict(op.params)
        batch = params.pop("batch", 1)
        if op.kind == "gemm":
            batch = 1  # gemm params already cover the whole op
        if op.kind == "dense":
            params["batch"] = op.params["batch"]
            batch = 1
        instances = self.num_accel_instances
        per_wave = min(instances, batch)
        result = model.estimate(params, num_instances=per_wave)
        waves = math.ceil(batch / per_wave)
        frequency = model.design.frequency_ghz * 1e9
        seconds = result.cycles * waves / frequency
        energy_j = result.energy_nj * batch * 1e-9
        return OpCost(seconds, energy_j, on_accelerator=True)

    # -- whole model ---------------------------------------------------------
    def training_step_cost(self, model: Sequential, batch: int = 32, *,
                           accelerated: bool) -> SystemCost:
        total = SystemCost(breakdown={})
        for op in model.training_ops(batch):
            if accelerated and op.accelerable:
                cost = self.accel_cost(op)
            else:
                cost = self.cpu_cost(op)
            total.seconds += cost.seconds
            total.energy_j += cost.energy_j
            key = f"{op.kind}/{op.phase}" + \
                ("[accel]" if cost.on_accelerator else "[cpu]")
            total.breakdown[key] = total.breakdown.get(key, 0.0) \
                + cost.seconds
        return total

    def edp_improvement(self, model: Sequential, batch: int = 32) -> float:
        """The Figure 14 metric: baseline-OoO EDP / accelerator-SoC EDP."""
        baseline = self.training_step_cost(model, batch, accelerated=False)
        soc = self.training_step_cost(model, batch, accelerated=True)
        return baseline.edp / soc.edp
