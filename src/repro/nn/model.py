"""Sequential model container and the three §VII-C applications."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .layers import (
    Aggregate, BatchNorm, Conv2D, Dense, Dropout, Embedding, Flatten, Layer,
    MaxPool, Op, RandomWalk, ReLU,
)


class Sequential:
    """A stack of layers; ``training_ops`` lowers one training step for a
    batch into the costed op stream."""

    def __init__(self, name: str, layers: Sequence[Layer],
                 input_shape: Tuple[int, ...]):
        self.name = name
        self.layers = list(layers)
        self.input_shape = tuple(input_shape)

    def training_ops(self, batch: int = 32) -> List[Op]:
        ops: List[Op] = []
        shape = self.input_shape
        for layer in self.layers:
            ops.extend(layer.training_ops(shape, batch))
            shape = layer.output_shape(shape)
        return ops

    def summary(self, batch: int = 32) -> str:
        lines = [f"model {self.name} (input {self.input_shape})"]
        shape = self.input_shape
        for layer in self.layers:
            out = layer.output_shape(shape)
            flops = sum(op.flops for op in layer.training_ops(shape, batch))
            lines.append(f"  {layer.name:12s} {shape} -> {out}  "
                         f"({flops / 1e6:.1f} MFLOP/step)")
            shape = out
        return "\n".join(lines)


def convnet(input_hw: int = 16, channels: int = 8) -> Sequential:
    """ConvNet: conv + ReLU + batch norm, three residual-style blocks,
    pooling, and a fully-connected classifier (paper §VII-C)."""
    layers: List[Layer] = [
        Conv2D(channels), ReLU(), BatchNorm(),
    ]
    for _ in range(3):  # residual blocks: two convs each
        layers += [Conv2D(channels), ReLU(), Conv2D(channels), BatchNorm()]
    layers += [MaxPool(2), Flatten(), Dense(64), ReLU(), Dense(10)]
    return Sequential("ConvNet", layers, (input_hw, input_hw, 3))


def graphsage(samples: int = 32, walk_len: int = 16,
              vertices: int = 16384, dim: int = 64) -> Sequential:
    """GraphSage: random-walk sampling + embedding gather (CPU-only)
    feeding CBOW-style aggregation and fully connected + ReLU layers
    (accelerated)."""
    layers: List[Layer] = [
        RandomWalk(walk_len, vertices),
        Embedding(vertices, dim),
        Aggregate(),
        Dense(1024), ReLU(),
        Dense(512), ReLU(),
        Dense(dim),
    ]
    return Sequential("GraphSage", layers, (samples,))


def recsys(items: int = 2048, hidden: int = 256) -> Sequential:
    """RecSys: two FC+ReLU+BN+Dropout blocks and a final FC — entirely
    handled by accelerators (paper: "RecSys ... is entirely handled by
    accelerators")."""
    layers: List[Layer] = [
        Dense(hidden), ReLU(), BatchNorm(), Dropout(0.5),
        Dense(hidden), ReLU(), BatchNorm(), Dropout(0.5),
        Dense(items),
    ]
    return Sequential("RecSys", layers, (items,))


PAPER_MODELS = {
    "ConvNet": convnet,
    "GraphSage": graphsage,
    "RecSys": recsys,
}
