"""Lower a Sequential model's forward pass to a real IR kernel.

This is the §VII-C mechanism proper: "the accelerator invocation calls
then appear in the instrumented LLVM that MosaicSim operates on, so once
the application is compiled and executed, the accelerator invocations are
simulated whenever MosaicSim encounters their function calls."

``lower_inference`` walks a model, allocates weight/activation buffers in
a :class:`SimMemory`, and generates a kernel (in the Python dialect)
whose body is one ``accel_*`` call per layer. Compiling and tracing that
kernel *functionally executes* the network (the interpreter applies each
accelerator's numpy semantics), so the simulated forward pass can be
validated against an independent reference — while the Interleaver costs
every invocation through the accelerator tile models.

Supported layers for lowering: Conv2D (valid padding), Dense, ReLU,
BatchNorm, MaxPool, Flatten.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..frontend import compile_kernel
from ..ir.function import Function
from ..ir.types import F64
from ..sim.accelerator.tile import AcceleratorFarm
from ..trace.memory import ArrayRef, SimMemory
from .layers import BatchNorm, Conv2D, Dense, Flatten, Layer, MaxPool, ReLU
from .model import Sequential


class LoweringError(Exception):
    pass


@dataclass
class LoweredModel:
    """A compiled forward pass plus everything needed to run it."""

    model: Sequential
    function: Function
    source: str
    args: List
    memory: SimMemory
    input_buffer: ArrayRef
    output_buffer: ArrayRef
    #: layer kinds used, for accelerator-farm construction
    accel_kinds: Tuple[str, ...]
    #: independent numpy forward pass over the same weights
    reference: Callable[[np.ndarray], np.ndarray] = None

    def farm(self, plm_bytes: int = 128 * 1024,
             num_instances: int = 1) -> AcceleratorFarm:
        """An AcceleratorFarm covering every op this model invokes."""
        farm = AcceleratorFarm()
        for kind in self.accel_kinds:
            farm.add_default(kind, plm_bytes=plm_bytes,
                             num_instances=num_instances)
        return farm


def _elems(shape: Tuple[int, ...]) -> int:
    count = 1
    for dim in shape:
        count *= dim
    return count


def lower_inference(model: Sequential, *, seed: int = 0,
                    memory: Optional[SimMemory] = None) -> LoweredModel:
    """Lower ``model``'s batch-1 forward pass to an IR kernel."""
    mem = memory if memory is not None else SimMemory()
    rng = np.random.default_rng(seed)

    shape = model.input_shape
    input_buffer = mem.alloc(_elems(shape), F64, "act0")
    buffers = [input_buffer]
    params: List[Tuple[str, ArrayRef]] = [("act0", input_buffer)]
    lines: List[str] = []
    kinds: List[str] = []
    reference_steps: List[Callable[[np.ndarray], np.ndarray]] = []

    def fresh(name: str, count: int) -> ArrayRef:
        ref = mem.alloc(count, F64, name)
        params.append((name, ref))
        return ref

    current = "act0"
    for index, layer in enumerate(model.layers):
        out_shape = layer.output_shape(shape)
        if isinstance(layer, Flatten):
            reference_steps.append(lambda x: x.reshape(-1))
            shape = out_shape
            continue
        out_name = f"act{index + 1}"
        out_buf = fresh(out_name, _elems(out_shape))
        if isinstance(layer, Conv2D):
            if layer.padded:
                raise LoweringError(
                    "lower_inference supports valid (unpadded) Conv2D "
                    "only; build the model with Conv2D(..., padded=False)")
            h, w, cin = shape
            cout, kh, kw = layer.filters, layer.kh, layer.kw
            weights = rng.normal(0, 0.3, size=(kh, kw, cin, cout))
            w_buf = fresh(f"w{index}", weights.size)
            w_buf.data[:] = weights.ravel()
            lines.append(
                f"    accel_conv2d({current}, w{index}, {out_name}, "
                f"{h}, {w}, {cin}, {cout}, {kh}, {kw})")
            kinds.append("conv2d")

            def conv_step(x, W=weights, hh=h, ww=w, ci=cin, co=cout,
                          k1=kh, k2=kw):
                X = x.reshape(hh, ww, ci)
                oh, ow = hh - k1 + 1, ww - k2 + 1
                out = np.zeros((oh, ow, co))
                for di in range(k1):
                    for dj in range(k2):
                        out += np.tensordot(X[di:di + oh, dj:dj + ow],
                                            W[di, dj], axes=([2], [0]))
                return out.reshape(-1)

            reference_steps.append(conv_step)
        elif isinstance(layer, Dense):
            din, dout = _elems(shape), layer.units
            weights = rng.normal(0, 0.3, size=(din, dout))
            w_buf = fresh(f"w{index}", weights.size)
            w_buf.data[:] = weights.ravel()
            lines.append(
                f"    accel_dense({current}, w{index}, {out_name}, "
                f"1, {din}, {dout})")
            kinds.append("dense")
            reference_steps.append(
                lambda x, W=weights: (x.reshape(1, -1) @ W).reshape(-1))
        elif isinstance(layer, ReLU):
            lines.append(
                f"    accel_relu({current}, {out_name}, {_elems(shape)})")
            kinds.append("relu")
            reference_steps.append(lambda x: np.maximum(x, 0))
        elif isinstance(layer, BatchNorm):
            lines.append(
                f"    accel_batchnorm({current}, {out_name}, "
                f"{_elems(shape)})")
            kinds.append("batchnorm")

            def bn_step(x):
                std = x.std()
                return (x - x.mean()) / (std if std > 0 else 1.0)

            reference_steps.append(bn_step)
        elif isinstance(layer, MaxPool):
            h, w, c = shape
            lines.append(
                f"    accel_pool({current}, {out_name}, {h}, {w}, {c}, "
                f"{layer.stride})")
            kinds.append("pool")

            def pool_step(x, hh=h, ww=w, cc=c, s=layer.stride):
                X = x.reshape(hh, ww, cc)
                oh, ow = hh // s, ww // s
                trimmed = X[:oh * s, :ow * s, :]
                return trimmed.reshape(oh, s, ow, s, cc).max(
                    axis=(1, 3)).reshape(-1)

            reference_steps.append(pool_step)
        else:
            raise LoweringError(
                f"layer {layer.name!r} has no inference lowering")
        current = out_name
        shape = out_shape
        buffers.append(out_buf)

    signature = ", ".join(f"{name}: 'f64*'" for name, _ in params)
    source = f"def {model.name.lower()}_forward({signature}):\n" \
        + "\n".join(lines) + "\n"
    function = compile_kernel(source)

    def reference(x: np.ndarray) -> np.ndarray:
        activation = np.asarray(x, dtype=float).reshape(-1)
        for step in reference_steps:
            activation = step(activation)
        return activation

    return LoweredModel(
        model=model, function=function, source=source,
        args=[ref for _, ref in params], memory=mem,
        input_buffer=input_buffer, output_buffer=buffers[-1],
        accel_kinds=tuple(dict.fromkeys(kinds)), reference=reference)


def convnet_inference(input_hw: int = 12, channels: int = 6) -> Sequential:
    """A ConvNet variant with valid convolutions, suitable for lowering."""
    layers: List[Layer] = [
        Conv2D(channels, padded=False), ReLU(), BatchNorm(),
        Conv2D(channels, padded=False), ReLU(),
        MaxPool(2), Flatten(),
        Dense(32), ReLU(), Dense(10),
    ]
    return Sequential("ConvNetInfer", layers, (input_hw, input_hw, 3))
