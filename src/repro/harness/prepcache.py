"""Content-addressed on-disk cache for prepare() artifacts.

The prepare phase — compile the kernel, build the static DDG, run the
Dynamic Trace Generator over the workload's memory — is a pure function
of the kernel IR and its inputs, yet it used to be recomputed on every
``simulate``/``inject``/``analyze``/``memstat`` invocation and every
sweep. This module makes it compile-once, simulate-many: prepared
artifacts are stored on disk under a content-addressed key and replayed
on the next run with identical inputs.

Key derivation
--------------
A key is the SHA-256 over:

* the compiled kernel's formatted IR (``format_function``) — covers
  source text, compiler pipeline and SSA naming in one artifact;
* the bound argument spec (scalars by repr, arrays by segment identity);
* the full initial memory image (segment layout + data bytes), hashed
  *before* functional interpretation mutates it;
* ``num_tiles``; and
* the frontend/interpreter/cache schema versions, so a change to
  lowering or trace semantics invalidates every old entry at once.

Fault injectors corrupt functional loads and advance RNG/log state
during trace generation, so a prepare with an injector attached always
bypasses the cache (both lookup and store).

Entry format and integrity
--------------------------
One entry is ``<key>.prep`` — a pickled envelope holding the cache
schema version, the key, a zlib-compressed pickle of the artifact, and
the payload's SHA-256 — plus a ``<key>.json`` sidecar of human-readable
metadata. Both are written atomically (:mod:`repro.ioutil`), so
concurrent writers racing on one key are safe: last rename wins and
every reader sees a complete entry. Corrupt, stale, or truncated
entries are discarded with a STATUS warning and the caller falls back
to a fresh compile — a broken cache can cost time, never correctness.

GC policy
---------
The cache is size-capped (default 512 MiB). After every store, and on
``repro cache gc``, least-recently-used entries (hit = mtime bump) are
removed oldest-first until the cap holds.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from ..frontend.compiler import FRONTEND_SCHEMA_VERSION
from ..ir import format_function
from ..ir.function import Function
from ..trace.interpreter import INTERPRETER_SCHEMA_VERSION
from ..trace.memory import ArrayRef, SimMemory
from .status import STATUS

#: bump when the entry envelope or the keyed artifact layout changes
#: incompatibly — old entries then read as stale and recompile
PREPCACHE_SCHEMA_VERSION = 1

#: default size cap for the on-disk cache
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

_ENTRY_SUFFIX = ".prep"
_META_SUFFIX = ".json"


def default_cache_root() -> str:
    """``REPRO_PREP_CACHE_DIR`` when set, else ``~/.cache/repro/prepcache``."""
    env = os.environ.get("REPRO_PREP_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro",
                        "prepcache")


def _segment_identity(segment: ArrayRef) -> tuple:
    return (segment.name, segment.base, str(segment.element_type),
            len(segment.data))


def prepare_key(func: Function, args: Sequence, num_tiles: int,
                memory: SimMemory) -> Optional[str]:
    """Content address of one prepare() invocation, or None when the
    inputs defeat content addressing (an argument array backed by a
    different SimMemory than the one being interpreted).

    Must be computed over the *initial* memory image — functional
    interpretation mutates ``memory`` in place.
    """
    hasher = hashlib.sha256()
    hasher.update(repr(("prepcache", PREPCACHE_SCHEMA_VERSION,
                        FRONTEND_SCHEMA_VERSION,
                        INTERPRETER_SCHEMA_VERSION,
                        num_tiles)).encode("utf-8"))
    hasher.update(format_function(func).encode("utf-8"))
    for arg in args:
        if isinstance(arg, ArrayRef):
            if arg.memory is not memory:
                return None
            hasher.update(repr(("ref",) + _segment_identity(arg))
                          .encode("utf-8"))
        else:
            hasher.update(repr(("scalar", repr(arg))).encode("utf-8"))
    for segment in memory.segments:
        hasher.update(repr(("segment",) + _segment_identity(segment))
                      .encode("utf-8"))
        hasher.update(hashlib.sha256(segment.data.tobytes()).digest())
    return hasher.hexdigest()


class PrepareCache:
    """Versioned, content-addressed store of prepare() artifacts.

    The artifact type is opaque here (any picklable object); the runner
    stores stripped :class:`~repro.harness.runner.Prepared` instances.
    Every failure mode — unreadable entry, schema drift, digest
    mismatch, disk-full store — degrades to a miss with a STATUS
    warning; the cache never raises into a run.
    """

    def __init__(self, root: Optional[str] = None,
                 max_bytes: int = DEFAULT_MAX_BYTES):
        self.root = root or default_cache_root()
        self.max_bytes = max_bytes
        # session counters (per-instance, advisory)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.bypasses = 0

    # -- paths -------------------------------------------------------------
    def _entry_path(self, key: str) -> str:
        return os.path.join(self.root, key + _ENTRY_SUFFIX)

    def _meta_path(self, key: str) -> str:
        return os.path.join(self.root, key + _META_SUFFIX)

    # -- load / store ------------------------------------------------------
    @staticmethod
    def _validate_entry(entry, key: Optional[str]) -> Optional[str]:
        """Problem description for a decoded envelope, None when sound."""
        if not isinstance(entry, dict):
            return "not a cache entry envelope"
        if entry.get("schema") != PREPCACHE_SCHEMA_VERSION:
            return (f"schema {entry.get('schema')!r} != "
                    f"{PREPCACHE_SCHEMA_VERSION} (stale)")
        if key is not None and entry.get("key") != key:
            return "entry key does not match its file name"
        payload = entry.get("payload")
        if not isinstance(payload, bytes):
            return "payload missing"
        if hashlib.sha256(payload).hexdigest() != entry.get(
                "payload_digest"):
            return "payload digest mismatch (corrupt)"
        return None

    def _read_entry(self, key: str):
        """(envelope, problem) for ``key``; (None, None) on a plain miss."""
        try:
            with open(self._entry_path(key), "rb") as handle:
                entry = pickle.load(handle)
        except FileNotFoundError:
            return None, None
        except Exception as exc:
            return None, f"unreadable entry ({exc})"
        problem = self._validate_entry(entry, key)
        if problem:
            return None, problem
        return entry, None

    def _discard(self, key: str, problem: str) -> None:
        STATUS.warn(f"prepare cache: discarding {key[:12]}: {problem}; "
                    f"falling back to a fresh compile")
        for path in (self._entry_path(key), self._meta_path(key)):
            try:
                os.unlink(path)
            except OSError:
                pass

    def load(self, key: str) -> Optional[Tuple[object, str]]:
        """(artifact, payload_digest) for ``key``; None on miss.

        A hit bumps the entry's mtime — the LRU recency signal GC
        evicts by."""
        entry, problem = self._read_entry(key)
        if entry is None:
            self.misses += 1
            if problem:
                self._discard(key, problem)
            return None
        try:
            artifact = pickle.loads(zlib.decompress(entry["payload"]))
        except Exception as exc:
            self.misses += 1
            self._discard(key, f"payload does not decode ({exc})")
            return None
        self.hits += 1
        try:
            now = time.time()
            os.utime(self._entry_path(key), (now, now))
        except OSError:
            pass
        return artifact, entry["payload_digest"]

    def store(self, key: str, artifact: object,
              meta: Optional[Dict] = None) -> Optional[str]:
        """Write ``artifact`` under ``key``; returns the payload digest,
        or None when the store failed (never raises)."""
        from ..ioutil import atomic_write_bytes, atomic_write_json
        try:
            payload = zlib.compress(pickle.dumps(artifact, protocol=4), 6)
        except Exception as exc:
            STATUS.warn(f"prepare cache: cannot serialize artifact for "
                        f"{key[:12]} ({exc}); not cached")
            return None
        digest = hashlib.sha256(payload).hexdigest()
        envelope = {
            "schema": PREPCACHE_SCHEMA_VERSION,
            "key": key,
            "payload": payload,
            "payload_digest": digest,
        }
        sidecar = {
            "schema": PREPCACHE_SCHEMA_VERSION,
            "key": key,
            "payload_bytes": len(payload),
            "payload_digest": digest,
            "created_unix": time.time(),
        }
        sidecar.update(meta or {})
        try:
            os.makedirs(self.root, exist_ok=True)
            atomic_write_bytes(self._entry_path(key),
                               pickle.dumps(envelope, protocol=4))
            atomic_write_json(self._meta_path(key), sidecar, indent=2)
        except OSError as exc:
            STATUS.warn(f"prepare cache: store failed for {key[:12]} "
                        f"({exc}); continuing uncached")
            return None
        self.stores += 1
        self.gc()
        return digest

    def payload_bytes(self, key: str) -> Optional[bytes]:
        """The stored compressed payload for ``key`` (the exact bytes a
        sweep ships to its worker pool), or None when absent/unsound —
        lets sweeps skip re-compressing a Prepared the cache already
        holds."""
        entry, _ = self._read_entry(key)
        if entry is None:
            return None
        return entry["payload"]

    # -- inspection / maintenance ------------------------------------------
    def entries(self) -> List[Dict]:
        """Metadata for every entry, least recently used first."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        table = []
        for name in sorted(names):
            if not name.endswith(_ENTRY_SUFFIX):
                continue
            key = name[:-len(_ENTRY_SUFFIX)]
            record: Dict = {"key": key}
            try:
                stat = os.stat(self._entry_path(key))
            except OSError:
                continue
            record["disk_bytes"] = stat.st_size
            record["mtime"] = stat.st_mtime
            try:
                with open(self._meta_path(key), "r",
                          encoding="utf-8") as handle:
                    sidecar = json.load(handle)
                if isinstance(sidecar, dict):
                    for field in ("kernel", "num_tiles", "traces",
                                  "payload_bytes", "payload_digest",
                                  "created_unix"):
                        if field in sidecar:
                            record[field] = sidecar[field]
                record["disk_bytes"] += os.stat(
                    self._meta_path(key)).st_size
            except (OSError, ValueError):
                pass  # sidecar is advisory; the envelope is authoritative
            table.append(record)
        table.sort(key=lambda r: r["mtime"])
        return table

    def stats(self) -> Dict:
        entries = self.entries()
        return {
            "root": self.root,
            "schema": PREPCACHE_SCHEMA_VERSION,
            "entries": len(entries),
            "total_bytes": sum(e["disk_bytes"] for e in entries),
            "max_bytes": self.max_bytes,
            "session": {"hits": self.hits, "misses": self.misses,
                        "stores": self.stores, "bypasses": self.bypasses},
        }

    def gc(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used entries until the cache fits in
        ``max_bytes`` (default: the instance cap). Returns the number of
        entries removed."""
        cap = self.max_bytes if max_bytes is None else max_bytes
        entries = self.entries()
        total = sum(e["disk_bytes"] for e in entries)
        removed = 0
        for entry in entries:
            if total <= cap:
                break
            for path in (self._entry_path(entry["key"]),
                         self._meta_path(entry["key"])):
                try:
                    os.unlink(path)
                except OSError:
                    pass
            total -= entry["disk_bytes"]
            removed += 1
            STATUS.verbose(f"prepare cache: gc evicted "
                           f"{entry['key'][:12]} "
                           f"({entry['disk_bytes']} bytes)")
        return removed

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        entries = self.entries()
        for entry in entries:
            for path in (self._entry_path(entry["key"]),
                         self._meta_path(entry["key"])):
                try:
                    os.unlink(path)
                except OSError:
                    pass
        return len(entries)

    def verify(self) -> List[Dict]:
        """Deep-check every entry (envelope, schema, payload digest,
        payload decode). Returns ``[{"key", "ok", "problem"}, ...]``;
        nothing is discarded — that is ``gc``/``load``'s job."""
        results = []
        for record in self.entries():
            key = record["key"]
            entry, problem = self._read_entry(key)
            if entry is not None:
                try:
                    pickle.loads(zlib.decompress(entry["payload"]))
                except Exception as exc:
                    problem = f"payload does not decode ({exc})"
            results.append({"key": key, "ok": problem is None,
                            "problem": problem or ""})
        return results


__all__ = [
    "DEFAULT_MAX_BYTES", "PREPCACHE_SCHEMA_VERSION", "PrepareCache",
    "default_cache_root", "prepare_key",
]
