"""System configuration presets from the paper's tables.

* Table I — the validation machine (Intel Xeon E5-2667 v3) used for the
  accuracy and scaling studies of §VI-A;
* Table II — the core and memory parameters of the DAE case study (§VII-A),
  including the McPAT-derived areas used for the equal-area comparison
  (OoO 8.44 mm² ≈ 8 × InO 1.01 mm²).
"""

from __future__ import annotations

from ..sim.config import (
    CacheConfig, CoreConfig, MemoryHierarchyConfig, PrefetcherConfig,
    SimpleDRAMConfig,
)

# -- Table II core models ------------------------------------------------------

#: areas from McPAT at 22nm (paper Table II)
OOO_AREA_MM2 = 8.44
INO_AREA_MM2 = 1.01


def inorder_core(name: str = "InO") -> CoreConfig:
    """Table II in-order core: 1-wide, window/RoB/LSQ of 1, 2 GHz."""
    return CoreConfig(
        name=name, issue_width=1, rob_size=1, lsq_size=1,
        frequency_ghz=2.0, branch_predictor="none",
        area_mm2=INO_AREA_MM2,
    )


def ooo_core(name: str = "OoO") -> CoreConfig:
    """Table II out-of-order core: 4-wide, 128-entry window/RoB/LSQ."""
    return CoreConfig(
        name=name, issue_width=4, rob_size=128, lsq_size=128,
        frequency_ghz=2.0, branch_predictor="perfect",
        perfect_alias=True,  # OoO cores speculate memory dependences
        area_mm2=OOO_AREA_MM2,
    )


# -- Table I validation machine -----------------------------------------------

def xeon_core(name: str = "XeonE5") -> CoreConfig:
    """One core of the Xeon E5-2667 v3 (3.2 GHz, aggressive OoO)."""
    return CoreConfig(
        name=name, issue_width=4, rob_size=192, lsq_size=72,
        frequency_ghz=3.2, branch_predictor="perfect",
        perfect_alias=True,  # models x86 memory-dependence speculation
        area_mm2=OOO_AREA_MM2,
    )


def xeon_hierarchy(num_cores: int = 1) -> MemoryHierarchyConfig:
    """Table I memory system: 32KB/8-way L1, 2MB/8-way L2 private,
    20MB/20-way shared LLC, DDR4 @ 68 GB/s."""
    return MemoryHierarchyConfig(
        private_levels=(
            CacheConfig(name="L1", size_bytes=32 * 1024, associativity=8,
                        latency=4, mshr_entries=10, energy_nj=0.10),
            CacheConfig(name="L2", size_bytes=2 * 1024 * 1024,
                        associativity=8, latency=12, mshr_entries=20,
                        energy_nj=0.50),
        ),
        llc=CacheConfig(name="LLC", size_bytes=20 * 1024 * 1024,
                        associativity=20, latency=40, ports=4,
                        mshr_entries=64, energy_nj=1.20),
        prefetcher=PrefetcherConfig(enabled=True, degree=4, trigger=3,
                                    distance=2),
        dram_model="simple",
        simple_dram=SimpleDRAMConfig(min_latency=220, bandwidth_gbps=68.0,
                                     epoch_cycles=100),
    )


# -- Table II memory system (DAE case study) ------------------------------------

def dae_hierarchy(num_cores: int = 2) -> MemoryHierarchyConfig:
    """Table II: 32KB/8-way/1-cycle L1, 2MB/8-way/6-cycle L2 (shared),
    DDR3L @ 24 GB/s with 200-cycle latency."""
    return MemoryHierarchyConfig(
        private_levels=(
            # 4 MSHRs: a lightweight in-order L1 supports few outstanding
            # misses — this bounds the memory-level parallelism of both
            # the DAE access cores and the OoO core, matching Fig. 11's
            # relative speedups
            CacheConfig(name="L1", size_bytes=32 * 1024, associativity=8,
                        latency=1, mshr_entries=4, energy_nj=0.10),
        ),
        llc=CacheConfig(name="L2", size_bytes=2 * 1024 * 1024,
                        associativity=8, latency=6, ports=4,
                        mshr_entries=32, energy_nj=0.50),
        prefetcher=PrefetcherConfig(enabled=False),
        dram_model="simple",
        simple_dram=SimpleDRAMConfig(min_latency=200, bandwidth_gbps=24.0,
                                     epoch_cycles=100),
    )


#: Table II communication queue parameters
DAE_QUEUE_ENTRIES = 512
DAE_QUEUE_LATENCY = 1
