"""Live sweep dashboard: progress fan-in, ETA math, and the `watch` view.

A running sweep publishes two files next to its journal:

* the journal itself (``SweepJournal`` JSONL) — completed points;
* a live-status sidecar (``<journal>.live.json``, atomic JSON) — which
  points are running right now, their latest heartbeat, and per-point
  wall timing, maintained by :class:`SweepLiveStatus` from the worker
  heartbeats fanned in over a multiprocessing queue (or directly, in a
  serial sweep).

``repro watch JOURNAL`` renders both into a terminal dashboard:
per-point progress, ETA from rolling cycles/s, and straggler detection —
a running point whose last heartbeat is older than ``stall_after``
seconds is flagged STALLED and its final heartbeat's per-tile
``stall_state()`` payload is surfaced as a deadlock diagnosis.

The ETA arithmetic lives in small pure functions
(:func:`estimate_total_cycles`, :func:`eta_seconds`) so the math is
testable without running a sweep.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional

from ..ioutil import atomic_write_json

__all__ = [
    "LIVE_STATUS_VERSION", "SweepLiveStatus", "estimate_total_cycles",
    "eta_seconds", "live_path_for", "load_live", "render_watch",
    "watch_loop",
]

#: bump when the live-status sidecar layout changes incompatibly
LIVE_STATUS_VERSION = 1


def live_path_for(journal_path: str) -> str:
    """The live-status sidecar conventionally sits next to the journal."""
    return journal_path + ".live.json"


class SweepLiveStatus:
    """Coordinator-side aggregate of per-point progress.

    Thread-safe: the parallel sweep drains worker heartbeats on a
    background thread while ``collected()`` records finished points on
    the main thread. Every update atomically rewrites the sidecar, so a
    concurrently running ``repro watch`` never reads a torn document.

    ``clock`` is injectable (tests fake wall time to exercise the
    straggler detector without sleeping).
    """

    def __init__(self, path: str, total: int, clock=time.time):
        self.path = path
        self.total = total
        self._clock = clock
        self._lock = threading.Lock()
        self._points: Dict[int, dict] = {}
        self._started_unix = clock()

    def point_started(self, index: int) -> None:
        with self._lock:
            # the drain thread can deliver a queued start/heartbeat
            # after the main thread already recorded the point done;
            # done is terminal, late progress messages must not revive
            if self._points.get(index, {}).get("state") == "done":
                return
            self._points[index] = {"state": "running",
                                   "started_unix": self._clock()}
            self._write()

    def heartbeat(self, index: int, heartbeat: dict) -> None:
        with self._lock:
            entry = self._points.setdefault(
                index, {"state": "running", "started_unix": self._clock()})
            # a late-drained heartbeat (the worker's final one usually
            # lands after the main thread records completion) still
            # refreshes the snapshot, but done state is terminal
            entry["last"] = heartbeat
            entry["last_unix"] = self._clock()
            self._write()

    def point_done(self, index: int, point) -> None:
        """Record a finished SweepPoint (any outcome)."""
        with self._lock:
            previous = self._points.get(index, {})
            entry = {"state": "done", "outcome": point.outcome}
            if point.error:
                entry["error"] = point.error
            if point.cycles is not None:
                entry["cycles"] = point.cycles
            started = previous.get("started_unix")
            if started is not None:
                entry["wall_seconds"] = max(0.0, self._clock() - started)
            # keep the last streamed snapshot: it carries the per-tile
            # end state the dashboard shows for finished points
            if "last" in previous:
                entry["last"] = previous["last"]
                entry["last_unix"] = previous.get("last_unix")
            self._points[index] = entry
            self._write()

    def as_dict(self) -> dict:
        return {
            "version": LIVE_STATUS_VERSION,
            "total": self.total,
            "started_unix": self._started_unix,
            "updated_unix": self._clock(),
            "points": {str(index): entry
                       for index, entry in sorted(self._points.items())},
        }

    def _write(self) -> None:
        # advisory, like heartbeats: a failed sidecar write (disk full,
        # directory removed) must never take the sweep down
        try:
            atomic_write_json(self.path, self.as_dict())
        except OSError:
            pass


def load_live(path: str) -> Optional[dict]:
    """The live-status document, or None when absent/undecodable (the
    writer is atomic, so undecodable means not-a-sidecar, not torn)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict) or \
            document.get("version") != LIVE_STATUS_VERSION:
        return None
    return document


# -- ETA math (pure) --------------------------------------------------------

def estimate_total_cycles(completed_cycles: List[int]) -> Optional[float]:
    """Expected per-point cycle count, from points that finished ok.

    Sweep points re-time the same workload under different
    configurations, so finished points are the best available predictor
    for running ones. None until the first point completes."""
    cycles = [c for c in completed_cycles if c and c > 0]
    if not cycles:
        return None
    return sum(cycles) / len(cycles)


def eta_seconds(cycle: int, cycles_per_second: float,
                total_cycles_estimate: Optional[float]) -> Optional[float]:
    """Remaining wall seconds for a point at ``cycle`` advancing at
    ``cycles_per_second``, given the estimated finishing cycle. None
    when no estimate exists, the rate is unusable, or the point is past
    the estimate (it will finish when it finishes)."""
    if total_cycles_estimate is None or cycles_per_second <= 0:
        return None
    remaining = total_cycles_estimate - cycle
    if remaining <= 0:
        return None
    return remaining / cycles_per_second


def _format_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "eta ?"
    if seconds < 60:
        return f"eta {seconds:.0f}s"
    if seconds < 3600:
        return f"eta {seconds / 60:.1f}m"
    return f"eta {seconds / 3600:.1f}h"


def _straggler_lines(heartbeat: dict) -> List[str]:
    """Deadlock-style diagnosis from a stalled point's last heartbeat:
    which tiles are stuck, and on what."""
    lines = []
    for tile in heartbeat.get("tiles", []):
        if tile.get("done"):
            continue
        parts = [f"    {tile.get('name', '?')}:"]
        attention = tile.get("next_attention")
        parts.append("attention=never" if attention is None
                     else f"attention={attention}")
        for field in ("in_flight", "outstanding_memory_ops", "ready",
                      "accel_inflight"):
            if tile.get(field):
                parts.append(f"{field}={tile[field]}")
        lines.append(" ".join(parts))
    pending = heartbeat.get("events_pending")
    if pending is not None:
        lines.append(f"    events_pending={pending}, "
                     f"mem_inflight={heartbeat.get('mem_inflight', 0)}")
    return lines


def render_watch(journal_entries: Dict[int, dict], live: Optional[dict],
                 now: Optional[float] = None,
                 stall_after: float = 10.0) -> str:
    """One frame of the sweep dashboard, as a plain string.

    ``journal_entries`` is ``SweepJournal.load()`` output;
    ``live`` is the sidecar document (or None when the sweep has no live
    status — journal-only progress is still rendered). ``now`` defaults
    to the current wall clock and exists for tests.
    """
    if now is None:
        now = time.time()
    live_points = (live or {}).get("points", {})
    total = (live or {}).get("total") or (
        max(journal_entries) + 1 if journal_entries else 0)
    total = max(total, (max(journal_entries) + 1) if journal_entries else 0,
                (max((int(k) for k in live_points), default=-1) + 1))
    done_cycles: List[int] = []
    for entry in live_points.values():
        if entry.get("state") == "done" and entry.get("cycles"):
            done_cycles.append(entry["cycles"])
    per_point_estimate = estimate_total_cycles(done_cycles)
    done_walls = [entry["wall_seconds"] for entry in live_points.values()
                  if entry.get("state") == "done"
                  and entry.get("wall_seconds")]

    lines = []
    done = running = stalled = 0
    for index in range(total):
        journal_entry = journal_entries.get(index)
        entry = live_points.get(str(index), {})
        if entry.get("state") == "done":
            done += 1
            outcome = entry.get("outcome", "ok")
            detail = f"{entry['cycles']} cycles" if entry.get("cycles") \
                else entry.get("error", "")[:50]
            wall = entry.get("wall_seconds")
            if wall is not None:
                detail += f" in {wall:.1f}s" if detail else f"{wall:.1f}s"
            lines.append(f"  [{index:>3}] {outcome:<12} {detail}")
            continue
        if journal_entry is not None:
            # journal-only view (no sidecar): completed, outcome known
            done += 1
            lines.append(f"  [{index:>3}] {journal_entry.get('outcome', 'ok')}")
            continue
        if entry.get("state") == "running":
            heartbeat = entry.get("last")
            last_unix = entry.get("last_unix")
            if heartbeat is None:
                running += 1
                lines.append(f"  [{index:>3}] RUNNING      starting...")
                continue
            age = now - last_unix if last_unix is not None else 0.0
            cycle = heartbeat.get("cycle", 0)
            rate = heartbeat.get("wall", {}).get("cycles_per_second", 0.0)
            if age > stall_after:
                stalled += 1
                lines.append(
                    f"  [{index:>3}] STALLED      no heartbeat for "
                    f"{age:.0f}s, stuck at cycle {cycle}:")
                lines.extend(_straggler_lines(heartbeat))
            else:
                running += 1
                eta = eta_seconds(cycle, rate, per_point_estimate)
                lines.append(
                    f"  [{index:>3}] RUNNING      cycle {cycle}, "
                    f"ipc {heartbeat.get('ipc', 0.0):.2f}, "
                    f"{rate:,.0f} cyc/s, {_format_eta(eta)}")
            continue
        lines.append(f"  [{index:>3}] pending")

    header = (f"sweep: {done}/{total} done, {running} running, "
              f"{stalled} stalled, {total - done - running - stalled} "
              f"pending")
    remaining = total - done
    if done_walls and remaining > 0:
        overall = sum(done_walls) / len(done_walls) * remaining
        header += f" ({_format_eta(overall)} overall)"
    return "\n".join([header] + lines)


def watch_loop(journal_path: str, live_path: Optional[str] = None,
               *, interval: float = 2.0, stall_after: float = 10.0,
               once: bool = False, out=None) -> int:
    """The ``repro watch`` driver: render the dashboard every
    ``interval`` seconds until the sweep's points are all done (or
    forever, for an abandoned journal, until interrupted). Returns 0.
    """
    import sys
    from .sweeps import SweepJournal
    if out is None:
        out = sys.stdout
    if live_path is None:
        live_path = live_path_for(journal_path)
    while True:
        journal_entries = SweepJournal(journal_path).load()
        live = load_live(live_path)
        frame = render_watch(journal_entries, live, stall_after=stall_after)
        out.write(frame + "\n")
        out.flush()
        if once:
            return 0
        total = (live or {}).get("total", 0)
        done = sum(1 for entry in ((live or {}).get("points") or {}).values()
                   if entry.get("state") == "done")
        if total and done >= total:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
        out.write("\n")
