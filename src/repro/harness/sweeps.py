"""Design-space sweep utilities.

The paper's pitch is agile design-space exploration: "MosaicSim allows
the exploration of many combinations and configurations through its
lightweight plug-and-play interface" (§VII-B). These helpers run one
prepared workload across a grid of core/memory configurations and return
tidy result tables, reusing traces so each configuration costs only a
timing-simulation pass.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..sim.config import CoreConfig, MemoryHierarchyConfig
from ..sim.statistics import SystemStats
from .reporting import render_table
from .runner import Prepared, simulate


@dataclass
class SweepPoint:
    """One configuration's results."""

    parameters: Dict[str, object]
    stats: SystemStats

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def edp(self) -> float:
        return self.stats.edp


@dataclass
class SweepResult:
    points: List[SweepPoint] = field(default_factory=list)

    def best(self, metric: str = "cycles") -> SweepPoint:
        return min(self.points, key=lambda p: getattr(p, metric))

    def table(self, metrics: Sequence[str] = ("cycles", "ipc"),
              title: str = "") -> str:
        if not self.points:
            return title
        param_names = sorted(self.points[0].parameters)
        headers = param_names + list(metrics)
        rows = [
            [point.parameters[name] for name in param_names]
            + [getattr(point, metric) for metric in metrics]
            for point in self.points
        ]
        return render_table(headers, rows, title=title)


def sweep_core(prepared: Prepared, base: CoreConfig,
               grid: Dict[str, Iterable], *,
               hierarchy: Optional[MemoryHierarchyConfig] = None,
               hierarchy_factory: Optional[
                   Callable[[], MemoryHierarchyConfig]] = None,
               num_tiles: int = 1) -> SweepResult:
    """Simulate ``prepared`` under every combination of core-config
    overrides in ``grid`` (a dict of CoreConfig field -> values).

    ``hierarchy_factory`` rebuilds the memory system per point (cold
    caches for every configuration); passing ``hierarchy`` reuses one
    config object but still constructs a fresh MemorySystem per run.
    """
    names = sorted(grid)
    result = SweepResult()
    for combo in itertools.product(*(list(grid[name]) for name in names)):
        overrides = dict(zip(names, combo))
        core = replace(base, **overrides)
        h = hierarchy_factory() if hierarchy_factory is not None \
            else hierarchy
        stats = simulate(prepared.function, [], prepared=prepared,
                         core=core, num_tiles=num_tiles, hierarchy=h)
        result.points.append(SweepPoint(overrides, stats))
    return result


def sweep_hierarchy(prepared: Prepared, core: CoreConfig,
                    configurations: Dict[str, MemoryHierarchyConfig], *,
                    num_tiles: int = 1) -> SweepResult:
    """Simulate ``prepared`` under each named memory-hierarchy config."""
    result = SweepResult()
    for name, hierarchy in configurations.items():
        stats = simulate(prepared.function, [], prepared=prepared,
                         core=core, num_tiles=num_tiles,
                         hierarchy=hierarchy)
        result.points.append(SweepPoint({"hierarchy": name}, stats))
    return result
