"""Design-space sweep utilities.

The paper's pitch is agile design-space exploration: "MosaicSim allows
the exploration of many combinations and configurations through its
lightweight plug-and-play interface" (§VII-B). These helpers run one
prepared workload across a grid of core/memory configurations and return
tidy result tables, reusing traces so each configuration costs only a
timing-simulation pass.

Sweeps degrade gracefully: a configuration that deadlocks, blows its
cycle budget, or fails validation is recorded as a non-``ok`` point and
the sweep continues, so one bad corner of the design space never costs
the whole exploration.

Sweeps are embarrassingly parallel — every point re-times the same
prepared traces under an independent system — so each sweep entry point
takes ``jobs``: with ``jobs > 1`` the points run on a process pool. The
:class:`Prepared` workload is shipped to each worker exactly once
(pickled + zlib, via the pool initializer), a point is a pure-data spec
the worker can rebuild the system from, and failures inside a worker
land in the same non-``ok`` SweepPoint records as serial sweeps. Point
order — and therefore every stat — is identical to a serial run (see
docs/performance.md). ``on_error="raise"`` forces serial execution so
the first failure propagates with its traceback.

Sweeps are also crash-recoverable (see ``docs/resilience.md``): with
``journal_path`` every completed point is appended to a JSONL journal
(its index, a parameter fingerprint, the outcome, a digest of the
canonical report, and the pickled stats), and ``resume=True`` skips
journaled points on a re-run, reconstructing them bit-identically. A
worker that dies *hard* — SIGKILL, OOM — no longer hangs the sweep: the
broken pool is detected, unfinished points are retried on a fresh pool
with backoff, and a point whose retries are exhausted is recorded as
``outcome="worker_died"``.
"""

from __future__ import annotations

import base64
import hashlib
import itertools
import json
import multiprocessing
import os
import pickle
import threading
import time
import zlib
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..resilience.faults import FaultInjector
from ..sim.config import ConfigError, CoreConfig, MemoryHierarchyConfig
from ..sim.errors import SimulationError
from ..sim.statistics import SystemStats
from ..telemetry.livestream import HeartbeatEmitter
from .reporting import render_table
from .runner import (
    DEFAULT_MAX_CYCLES, Prepared, classify_failure, simulate,
)
from .status import STATUS
from .watch import SweepLiveStatus, live_path_for


@dataclass
class SweepPoint:
    """One configuration's results (or its failure record)."""

    parameters: Dict[str, object]
    stats: Optional[SystemStats]
    outcome: str = "ok"
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    @property
    def cycles(self) -> Optional[int]:
        return self.stats.cycles if self.stats is not None else None

    @property
    def ipc(self) -> Optional[float]:
        return self.stats.ipc if self.stats is not None else None

    @property
    def edp(self) -> Optional[float]:
        return self.stats.edp if self.stats is not None else None


@dataclass
class SweepResult:
    points: List[SweepPoint] = field(default_factory=list)

    def best(self, metric: str = "cycles") -> SweepPoint:
        successful = [p for p in self.points if p.ok]
        if not successful:
            raise ValueError("no successful points")
        return min(successful, key=lambda p: getattr(p, metric))

    def outcomes(self) -> Dict[str, int]:
        """Outcome label -> count, e.g. {"ok": 6, "deadlock": 1}."""
        return dict(Counter(point.outcome for point in self.points))

    def table(self, metrics: Sequence[str] = ("cycles", "ipc"),
              title: str = "") -> str:
        if not self.points:
            return title
        param_names = sorted(self.points[0].parameters)
        headers = param_names + list(metrics) + ["outcome"]
        rows = []
        for point in self.points:
            row = [point.parameters[name] for name in param_names]
            for metric in metrics:
                value = getattr(point, metric)
                row.append(value if value is not None else "-")
            row.append(point.outcome)
            rows.append(row)
        return render_table(headers, rows, title=title)


def _run_point(parameters: Dict[str, object], simulate_call,
               on_error: str) -> SweepPoint:
    try:
        stats = simulate_call()
    except (SimulationError, ConfigError) as exc:
        if on_error == "raise":
            raise
        return SweepPoint(parameters, None, outcome=classify_failure(exc),
                          error=str(exc))
    return SweepPoint(parameters, stats)


# -- crash-recoverable sweep journal ----------------------------------------

#: bump when the journal line layout changes incompatibly
SWEEP_JOURNAL_VERSION = 1


def _params_key(parameters: Dict[str, object]) -> str:
    """Stable fingerprint of a point's parameters; parameter values may
    be arbitrary objects (FaultPlans, config names), so the key is the
    repr of the sorted items, not JSON."""
    return repr(sorted(parameters.items(), key=lambda item: item[0]))


def _stats_digest(stats: Optional[SystemStats]) -> Optional[str]:
    if stats is None:
        return None
    from ..telemetry import stats_to_dict
    canonical = json.dumps(stats_to_dict(stats), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class SweepJournal:
    """Append-only JSONL record of completed sweep points.

    One line per completed point: journal version, point index, the
    parameter fingerprint, outcome, error, a digest of the canonical
    stats report, and the pickled stats themselves (zlib + base64) — so
    a resumed sweep reconstructs skipped points *bit-identically*, not
    just approximately. Lines are flushed and fsynced as each point
    completes; a torn final line from a crash is ignored on load.
    ``worker_died`` points are never journaled, so a resume retries
    them.
    """

    def __init__(self, path: str):
        self.path = path

    def append(self, index: int, parameters: Dict[str, object],
               point: SweepPoint) -> None:
        stats_blob = None
        if point.stats is not None:
            stats_blob = base64.b64encode(zlib.compress(
                pickle.dumps(point.stats, protocol=4), 6)).decode("ascii")
        line = json.dumps({
            "version": SWEEP_JOURNAL_VERSION,
            "index": index,
            "parameters": _params_key(parameters),
            "outcome": point.outcome,
            "error": point.error,
            "digest": _stats_digest(point.stats),
            "stats": stats_blob,
        })
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load(self) -> Dict[int, dict]:
        """Journaled entries by point index (last write wins); missing
        file means an empty journal, and a torn tail line ends the
        scan — everything after it simply re-runs."""
        entries: Dict[int, dict] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return entries
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                document = json.loads(line)
            except ValueError:
                break
            if (not isinstance(document, dict)
                    or document.get("version") != SWEEP_JOURNAL_VERSION
                    or not isinstance(document.get("index"), int)):
                continue
            entries[document["index"]] = document
        return entries

    @staticmethod
    def restore_point(parameters: Dict[str, object],
                      entry: dict) -> Optional[SweepPoint]:
        """Rebuild the SweepPoint a journal entry records, verifying the
        stats digest; None when the entry does not decode (the caller
        re-runs the point)."""
        stats = None
        if entry.get("stats") is not None:
            try:
                stats = pickle.loads(zlib.decompress(
                    base64.b64decode(entry["stats"])))
            except Exception as exc:
                STATUS.warn(f"sweep journal: point "
                            f"{entry.get('index')} stats blob does not "
                            f"decode ({exc}); re-running the point")
                return None
            if _stats_digest(stats) != entry.get("digest"):
                STATUS.warn(f"sweep journal: point "
                            f"{entry.get('index')} stats digest "
                            f"mismatch; re-running the point")
                return None
        return SweepPoint(parameters, stats,
                          outcome=entry.get("outcome", "ok"),
                          error=entry.get("error", ""))


# -- sweep execution: serial or worker pool --------------------------------
#
# A sweep point is (parameters, spec): ``parameters`` labels the point in
# the result table; ``spec`` is a pure-data dict of ``simulate`` keyword
# arguments, plus two convenience keys resolved at run time —
# ``hierarchy_factory`` (rebuilds a cold memory config per point) and
# ``plan`` (a FaultPlan wired in as a fresh FaultInjector). Pure data is
# what makes the spec picklable, which is what lets a worker process
# execute it against its own copy of the Prepared workload.
#
# A spec may instead carry ``point_runner``: a picklable callable
# ``(parameters, spec, payload) -> SweepPoint`` that replaces the
# default simulate path entirely. The payload is whatever object the
# caller handed _execute_sweep as ``prepared`` — the fault-campaign
# engine ships a CampaignPayload (golden Prepared + pristine workload
# blob) this way and keeps the journal/resume/worker-death machinery
# for free.

#: per-worker-process Prepared workload, installed by _worker_init
_WORKER_PREPARED: Optional[Prepared] = None
#: heartbeat fan-in queue shared with the coordinator (None = no live
#: progress requested); workers publish (index, kind, payload) tuples
_WORKER_HB_QUEUE = None
_WORKER_HB_EVERY: Optional[int] = None


def _worker_init(payload: bytes, hb_queue=None,
                 hb_every: Optional[int] = None) -> None:
    global _WORKER_PREPARED, _WORKER_HB_QUEUE, _WORKER_HB_EVERY
    _WORKER_PREPARED = pickle.loads(zlib.decompress(payload))
    _WORKER_HB_QUEUE = hb_queue
    _WORKER_HB_EVERY = hb_every


def _execute_spec(prepared: Prepared, spec: Dict,
                  emitter: Optional[HeartbeatEmitter] = None) -> SystemStats:
    spec = dict(spec)
    factory = spec.pop("hierarchy_factory", None)
    if factory is not None:
        spec["hierarchy"] = factory()
    plan = spec.pop("plan", None)
    if plan is not None:
        plan.validate()
        spec["injector"] = FaultInjector(plan)
    if emitter is not None:
        spec["emitter"] = emitter
    return simulate(prepared.function, [], prepared=prepared, **spec)


class _LiveSend:
    """In-process heartbeat sink for serial sweeps: heartbeats go
    straight into the live status, no queue hop."""

    def __init__(self, live, index: int):
        self.live = live
        self.index = index

    def __call__(self, heartbeat: dict) -> None:
        self.live.heartbeat(self.index, heartbeat)


class _QueueSend:
    """Picklable heartbeat sink: tags each heartbeat with its point
    index and publishes it on the coordinator's fan-in queue."""

    def __init__(self, queue, index: int):
        self.queue = queue
        self.index = index

    def __call__(self, heartbeat: dict) -> None:
        self.queue.put((self.index, "hb", heartbeat))


def _worker_point(task: Tuple[int, Dict, Dict, str]) -> SweepPoint:
    index, parameters, spec, on_error = task
    runner = spec.get("point_runner")
    if runner is not None:
        return runner(parameters, spec, _WORKER_PREPARED)
    if _WORKER_HB_QUEUE is not None:
        try:
            _WORKER_HB_QUEUE.put((index, "start", None))
        except Exception as exc:
            # a dead coordinator queue must not fail the point, but the
            # lost live progress should be observable on worker stderr
            STATUS.warn(f"sweep point {index}: heartbeat queue "
                        f"unreachable ({exc}); live progress for this "
                        f"point is lost")
        emitter = HeartbeatEmitter(
            send=_QueueSend(_WORKER_HB_QUEUE, index),
            every_cycles=_WORKER_HB_EVERY or 100_000,
            source={"point": index})
        run = lambda: _execute_spec(_WORKER_PREPARED, spec, emitter)
    else:
        # two-arg call kept distinct so tests can stub _execute_spec
        # without caring about heartbeats
        run = lambda: _execute_spec(_WORKER_PREPARED, spec)
    return _run_point(parameters, run, on_error)


def _execute_parallel(payload: bytes,
                      todo: List[Tuple[int, Dict, Dict]],
                      on_error: str, jobs: int,
                      point_retries: int, retry_backoff: float,
                      collected, hb_queue=None,
                      hb_every: Optional[int] = None) -> None:
    """Run ``(index, parameters, spec)`` tasks on a process pool,
    surviving hard worker deaths.

    A SIGKILLed/OOMed worker breaks the whole executor: its unfinished
    futures all raise :class:`BrokenProcessPool`. Finished results are
    kept, the survivors are retried on a fresh pool (with exponential
    backoff), and a point still unfinished after ``point_retries``
    extra rounds is recorded as ``outcome="worker_died"`` — the sweep
    never hangs and never silently drops a point. ``collected(index,
    parameters, point)`` receives every result, in index order within
    each round.
    """
    pending = todo
    attempt = 0
    while pending:
        workers = min(jobs, len(pending))
        broken = False
        survivors: List[Tuple[int, Dict, Dict]] = []
        with ProcessPoolExecutor(max_workers=workers,
                                 initializer=_worker_init,
                                 initargs=(payload, hb_queue,
                                           hb_every)) as pool:
            futures = []
            try:
                for index, parameters, spec in pending:
                    futures.append((index, parameters,
                                    pool.submit(_worker_point,
                                                (index, parameters, spec,
                                                 on_error))))
            except BrokenProcessPool:
                broken = True
            for position, (index, parameters, future) in enumerate(futures):
                try:
                    collected(index, parameters, future.result())
                except BrokenProcessPool:
                    broken = True
                    survivors.append(pending[position])
            # tasks never submitted (pool broke first) must retry too
            survivors.extend(pending[len(futures):])
        if not broken:
            return
        attempt += 1
        if attempt > point_retries:
            for index, parameters, spec in survivors:
                STATUS.warn(f"sweep point {index}: worker died hard and "
                            f"retries are exhausted; recording "
                            f"worker_died")
                collected(index, parameters, SweepPoint(
                    parameters, None, outcome="worker_died",
                    error=f"worker process died hard (SIGKILL/OOM) and "
                          f"{point_retries} retries were exhausted"))
            return
        STATUS.warn(f"sweep worker pool broke (attempt {attempt}/"
                    f"{point_retries}); retrying {len(survivors)} "
                    f"unfinished point(s) on a fresh pool")
        if retry_backoff > 0:
            time.sleep(retry_backoff * (2 ** (attempt - 1)))
        pending = survivors


def _drain_heartbeats(queue, live: SweepLiveStatus) -> None:
    """Coordinator-side fan-in thread: fold worker heartbeats into the
    live status sidecar until the None sentinel arrives."""
    while True:
        item = queue.get()
        if item is None:
            return
        index, kind, payload = item
        if kind == "start":
            live.point_started(index)
        elif kind == "hb":
            live.heartbeat(index, payload)


def _execute_sweep(prepared: Prepared, tasks: List[Tuple[Dict, Dict]],
                   on_error: str, jobs: int,
                   journal_path: Optional[str] = None,
                   resume: bool = False,
                   point_retries: int = 2,
                   retry_backoff: float = 0.0,
                   heartbeat_every: Optional[int] = None,
                   prep_cache=None) -> SweepResult:
    """Run every (parameters, spec) task; in order, serially or on a pool.

    Workers receive the Prepared workload once (compressed pickle via the
    pool initializer); when ``prep_cache`` holds the artifact under
    ``prepared.cache_key``, the stored payload is shipped as-is instead
    of re-compressing. Workers then stream pure-data specs. Results are assembled
    in submission order, so the SweepResult is bit-identical to a serial
    sweep — each point's simulation is an isolated deterministic run
    either way. ``on_error="raise"`` executes serially so the first
    failure propagates with a usable traceback.

    With ``journal_path``, completed points are journaled as they finish;
    ``resume=True`` additionally skips points the journal already has
    (matched by index + parameter fingerprint) and restores their results
    bit-identically. Hard worker deaths are retried ``point_retries``
    times with exponential ``retry_backoff`` before a point is recorded
    as ``worker_died`` (parallel mode; a serial worker death kills the
    process itself, which is exactly what the journal recovers from).

    With ``heartbeat_every`` (a cycle stride) and a ``journal_path``,
    running points stream heartbeats into a ``<journal>.live.json``
    sidecar — serially in-process, in parallel over a multiprocessing
    fan-in queue — which ``repro watch`` renders as a live dashboard.
    Heartbeats are advisory: they never change point results (the
    emitter only reads simulation state at consistency points), so
    serial/parallel bit-identity is preserved.
    """
    if resume and journal_path is None:
        raise ValueError("resume=True needs a journal_path to resume from")
    journal = SweepJournal(journal_path) if journal_path else None
    live: Optional[SweepLiveStatus] = None
    if heartbeat_every is not None and journal_path is not None:
        live = SweepLiveStatus(live_path_for(journal_path), len(tasks))
    points: List[Optional[SweepPoint]] = [None] * len(tasks)
    todo: List[Tuple[int, Dict, Dict]] = []
    entries = journal.load() if (journal is not None and resume) else {}
    for index, (parameters, spec) in enumerate(tasks):
        entry = entries.get(index)
        if entry is not None and entry.get("parameters") == \
                _params_key(parameters):
            restored = SweepJournal.restore_point(parameters, entry)
            if restored is not None:
                points[index] = restored
                continue
        todo.append((index, parameters, spec))

    def collected(index: int, parameters: Dict, point: SweepPoint) -> None:
        points[index] = point
        if journal is not None and point.outcome != "worker_died":
            journal.append(index, parameters, point)
        if live is not None:
            live.point_done(index, point)
        STATUS.verbose(f"sweep point {index}: {point.outcome}"
                       + (f" ({point.cycles} cycles)"
                          if point.cycles is not None else ""))

    jobs = min(jobs, len(todo))
    if jobs <= 1 or len(todo) <= 1 or on_error == "raise":
        for index, parameters, spec in todo:
            runner = spec.get("point_runner")
            if runner is not None:
                if live is not None:
                    live.point_started(index)
                collected(index, parameters,
                          runner(parameters, spec, prepared))
                continue
            if live is not None:
                live.point_started(index)
                emitter = HeartbeatEmitter(
                    send=_LiveSend(live, index),
                    every_cycles=heartbeat_every,
                    source={"point": index})
                run = (lambda s=spec, e=emitter:
                       _execute_spec(prepared, s, e))
            else:
                # two-arg call kept distinct so tests can stub
                # _execute_spec without caring about heartbeats
                run = lambda s=spec: _execute_spec(prepared, s)
            collected(index, parameters,
                      _run_point(parameters, run, on_error))
    elif todo:
        payload = None
        if prep_cache is not None and getattr(prepared, "cache_key", None):
            # ship the cache's stored payload (same format: zlib of
            # pickled Prepared) instead of paying compression again
            payload = prep_cache.payload_bytes(prepared.cache_key)
            if payload is not None:
                STATUS.verbose(f"sweep: shipping cached prepare payload "
                               f"{prepared.cache_key[:12]} "
                               f"({len(payload)} bytes) to workers")
        if payload is None:
            payload = zlib.compress(pickle.dumps(prepared, protocol=4), 6)
        hb_queue = None
        manager = None
        drain = None
        if live is not None:
            manager = multiprocessing.Manager()
            hb_queue = manager.Queue()
            drain = threading.Thread(target=_drain_heartbeats,
                                     args=(hb_queue, live), daemon=True)
            drain.start()
        try:
            _execute_parallel(payload, todo, on_error, jobs,
                              point_retries, retry_backoff, collected,
                              hb_queue=hb_queue,
                              hb_every=heartbeat_every)
        finally:
            if drain is not None:
                hb_queue.put(None)
                drain.join(timeout=10)
            if manager is not None:
                manager.shutdown()
    return SweepResult(points)


def sweep_core(prepared: Prepared, base: CoreConfig,
               grid: Dict[str, Iterable], *,
               hierarchy: Optional[MemoryHierarchyConfig] = None,
               hierarchy_factory: Optional[
                   Callable[[], MemoryHierarchyConfig]] = None,
               num_tiles: int = 1,
               max_cycles: int = DEFAULT_MAX_CYCLES,
               wall_clock_limit: Optional[float] = None,
               on_error: str = "record",
               jobs: int = 1,
               journal_path: Optional[str] = None,
               resume: bool = False,
               point_retries: int = 2,
               retry_backoff: float = 0.0,
               heartbeat_every: Optional[int] = None,
               prep_cache=None) -> SweepResult:
    """Simulate ``prepared`` under every combination of core-config
    overrides in ``grid`` (a dict of CoreConfig field -> values).

    The special grid key ``"plan"`` holds :class:`FaultPlan` values (or
    ``None``) instead of a core-config field: each point runs under a
    fresh :class:`FaultInjector` for its plan, so fault scenarios sweep
    like any other axis.

    ``hierarchy_factory`` rebuilds the memory system per point (cold
    caches for every configuration); passing ``hierarchy`` reuses one
    config object but still constructs a fresh MemorySystem per run.

    ``on_error="record"`` (default) turns failures into non-``ok``
    points; ``on_error="raise"`` propagates the first failure.
    ``jobs > 1`` distributes points over a worker pool (same results,
    same order). ``journal_path``/``resume``/``point_retries``/
    ``retry_backoff`` make the sweep crash-recoverable — see
    :func:`_execute_sweep` and ``docs/resilience.md``.
    ``heartbeat_every`` (with a journal) streams live per-point
    progress for ``repro watch`` — see ``docs/observability.md``.
    """
    names = sorted(grid)
    tasks = []
    for combo in itertools.product(*(list(grid[name]) for name in names)):
        overrides = dict(zip(names, combo))
        core_overrides = dict(overrides)
        plan = core_overrides.pop("plan", None)
        spec = {
            "core": replace(base, **core_overrides),
            "num_tiles": num_tiles,
            "max_cycles": max_cycles,
            "wall_clock_limit": wall_clock_limit,
            "plan": plan,
        }
        if hierarchy_factory is not None:
            spec["hierarchy_factory"] = hierarchy_factory
        else:
            spec["hierarchy"] = hierarchy
        tasks.append((overrides, spec))
    return _execute_sweep(prepared, tasks, on_error, jobs,
                          journal_path=journal_path, resume=resume,
                          point_retries=point_retries,
                          retry_backoff=retry_backoff,
                          heartbeat_every=heartbeat_every,
                          prep_cache=prep_cache)


def sweep_hierarchy(prepared: Prepared, core: CoreConfig,
                    configurations: Dict[str, MemoryHierarchyConfig], *,
                    num_tiles: int = 1,
                    max_cycles: int = DEFAULT_MAX_CYCLES,
                    wall_clock_limit: Optional[float] = None,
                    on_error: str = "record",
                    jobs: int = 1,
                    journal_path: Optional[str] = None,
                    resume: bool = False,
                    point_retries: int = 2,
                    retry_backoff: float = 0.0,
                    heartbeat_every: Optional[int] = None,
                    prep_cache=None) -> SweepResult:
    """Simulate ``prepared`` under each named memory-hierarchy config."""
    tasks = [({"hierarchy": name},
              {"core": core, "num_tiles": num_tiles,
               "hierarchy": hierarchy, "max_cycles": max_cycles,
               "wall_clock_limit": wall_clock_limit})
             for name, hierarchy in configurations.items()]
    return _execute_sweep(prepared, tasks, on_error, jobs,
                          journal_path=journal_path, resume=resume,
                          point_retries=point_retries,
                          retry_backoff=retry_backoff,
                          heartbeat_every=heartbeat_every,
                          prep_cache=prep_cache)


def sweep_runs(prepared: Prepared, runs: Dict[str, Dict], *,
               on_error: str = "record",
               jobs: int = 1,
               journal_path: Optional[str] = None,
               resume: bool = False,
               point_retries: int = 2,
               retry_backoff: float = 0.0,
               heartbeat_every: Optional[int] = None,
               prep_cache=None) -> SweepResult:
    """Simulate ``prepared`` once per named run configuration.

    Each value of ``runs`` is a dict of :func:`simulate` keyword
    arguments (``core``, ``hierarchy``, ``max_cycles``, ...) plus an
    optional ``"plan"`` key holding a :class:`FaultPlan` for that run.
    Failing runs are recorded (deadlock/timeout/fault/...) and the sweep
    continues — the acceptance scenario for resilient exploration.
    """
    tasks = [({"run": name}, dict(kwargs)) for name, kwargs in runs.items()]
    return _execute_sweep(prepared, tasks, on_error, jobs,
                          journal_path=journal_path, resume=resume,
                          point_retries=point_retries,
                          retry_backoff=retry_backoff,
                          heartbeat_every=heartbeat_every,
                          prep_cache=prep_cache)
