"""Design-space sweep utilities.

The paper's pitch is agile design-space exploration: "MosaicSim allows
the exploration of many combinations and configurations through its
lightweight plug-and-play interface" (§VII-B). These helpers run one
prepared workload across a grid of core/memory configurations and return
tidy result tables, reusing traces so each configuration costs only a
timing-simulation pass.

Sweeps degrade gracefully: a configuration that deadlocks, blows its
cycle budget, or fails validation is recorded as a non-``ok`` point and
the sweep continues, so one bad corner of the design space never costs
the whole exploration.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..resilience.faults import FaultInjector
from ..sim.config import ConfigError, CoreConfig, MemoryHierarchyConfig
from ..sim.errors import SimulationError
from ..sim.statistics import SystemStats
from .reporting import render_table
from .runner import (
    DEFAULT_MAX_CYCLES, Prepared, classify_failure, simulate,
)


@dataclass
class SweepPoint:
    """One configuration's results (or its failure record)."""

    parameters: Dict[str, object]
    stats: Optional[SystemStats]
    outcome: str = "ok"
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    @property
    def cycles(self) -> Optional[int]:
        return self.stats.cycles if self.stats is not None else None

    @property
    def ipc(self) -> Optional[float]:
        return self.stats.ipc if self.stats is not None else None

    @property
    def edp(self) -> Optional[float]:
        return self.stats.edp if self.stats is not None else None


@dataclass
class SweepResult:
    points: List[SweepPoint] = field(default_factory=list)

    def best(self, metric: str = "cycles") -> SweepPoint:
        successful = [p for p in self.points if p.ok]
        if not successful:
            raise ValueError("no successful points")
        return min(successful, key=lambda p: getattr(p, metric))

    def outcomes(self) -> Dict[str, int]:
        """Outcome label -> count, e.g. {"ok": 6, "deadlock": 1}."""
        return dict(Counter(point.outcome for point in self.points))

    def table(self, metrics: Sequence[str] = ("cycles", "ipc"),
              title: str = "") -> str:
        if not self.points:
            return title
        param_names = sorted(self.points[0].parameters)
        headers = param_names + list(metrics) + ["outcome"]
        rows = []
        for point in self.points:
            row = [point.parameters[name] for name in param_names]
            for metric in metrics:
                value = getattr(point, metric)
                row.append(value if value is not None else "-")
            row.append(point.outcome)
            rows.append(row)
        return render_table(headers, rows, title=title)


def _run_point(parameters: Dict[str, object], simulate_call,
               on_error: str) -> SweepPoint:
    try:
        stats = simulate_call()
    except (SimulationError, ConfigError) as exc:
        if on_error == "raise":
            raise
        return SweepPoint(parameters, None, outcome=classify_failure(exc),
                          error=str(exc))
    return SweepPoint(parameters, stats)


def sweep_core(prepared: Prepared, base: CoreConfig,
               grid: Dict[str, Iterable], *,
               hierarchy: Optional[MemoryHierarchyConfig] = None,
               hierarchy_factory: Optional[
                   Callable[[], MemoryHierarchyConfig]] = None,
               num_tiles: int = 1,
               max_cycles: int = DEFAULT_MAX_CYCLES,
               wall_clock_limit: Optional[float] = None,
               on_error: str = "record") -> SweepResult:
    """Simulate ``prepared`` under every combination of core-config
    overrides in ``grid`` (a dict of CoreConfig field -> values).

    ``hierarchy_factory`` rebuilds the memory system per point (cold
    caches for every configuration); passing ``hierarchy`` reuses one
    config object but still constructs a fresh MemorySystem per run.

    ``on_error="record"`` (default) turns failures into non-``ok``
    points; ``on_error="raise"`` propagates the first failure.
    """
    names = sorted(grid)
    result = SweepResult()
    for combo in itertools.product(*(list(grid[name]) for name in names)):
        overrides = dict(zip(names, combo))

        def run(overrides=overrides):
            core = replace(base, **overrides)
            h = hierarchy_factory() if hierarchy_factory is not None \
                else hierarchy
            return simulate(prepared.function, [], prepared=prepared,
                            core=core, num_tiles=num_tiles, hierarchy=h,
                            max_cycles=max_cycles,
                            wall_clock_limit=wall_clock_limit)

        result.points.append(_run_point(overrides, run, on_error))
    return result


def sweep_hierarchy(prepared: Prepared, core: CoreConfig,
                    configurations: Dict[str, MemoryHierarchyConfig], *,
                    num_tiles: int = 1,
                    max_cycles: int = DEFAULT_MAX_CYCLES,
                    wall_clock_limit: Optional[float] = None,
                    on_error: str = "record") -> SweepResult:
    """Simulate ``prepared`` under each named memory-hierarchy config."""
    result = SweepResult()
    for name, hierarchy in configurations.items():

        def run(hierarchy=hierarchy):
            return simulate(prepared.function, [], prepared=prepared,
                            core=core, num_tiles=num_tiles,
                            hierarchy=hierarchy, max_cycles=max_cycles,
                            wall_clock_limit=wall_clock_limit)

        result.points.append(_run_point({"hierarchy": name}, run, on_error))
    return result


def sweep_runs(prepared: Prepared, runs: Dict[str, Dict], *,
               on_error: str = "record") -> SweepResult:
    """Simulate ``prepared`` once per named run configuration.

    Each value of ``runs`` is a dict of :func:`simulate` keyword
    arguments (``core``, ``hierarchy``, ``max_cycles``, ...) plus an
    optional ``"plan"`` key holding a :class:`FaultPlan` for that run.
    Failing runs are recorded (deadlock/timeout/fault/...) and the sweep
    continues — the acceptance scenario for resilient exploration.
    """
    result = SweepResult()
    for name, kwargs in runs.items():

        def run(kwargs=kwargs):
            kwargs = dict(kwargs)
            plan = kwargs.pop("plan", None)
            if plan is not None:
                plan.validate()
                kwargs["injector"] = FaultInjector(plan)
            return simulate(prepared.function, [], prepared=prepared,
                            **kwargs)

        result.points.append(_run_point({"run": name}, run, on_error))
    return result
