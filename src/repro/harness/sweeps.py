"""Design-space sweep utilities.

The paper's pitch is agile design-space exploration: "MosaicSim allows
the exploration of many combinations and configurations through its
lightweight plug-and-play interface" (§VII-B). These helpers run one
prepared workload across a grid of core/memory configurations and return
tidy result tables, reusing traces so each configuration costs only a
timing-simulation pass.

Sweeps degrade gracefully: a configuration that deadlocks, blows its
cycle budget, or fails validation is recorded as a non-``ok`` point and
the sweep continues, so one bad corner of the design space never costs
the whole exploration.

Sweeps are embarrassingly parallel — every point re-times the same
prepared traces under an independent system — so each sweep entry point
takes ``jobs``: with ``jobs > 1`` the points run on a
``multiprocessing`` pool. The :class:`Prepared` workload is shipped to
each worker exactly once (pickled + zlib, via the pool initializer), a
point is a pure-data spec the worker can rebuild the system from, and
failures inside a worker land in the same non-``ok`` SweepPoint records
as serial sweeps. Point order — and therefore every stat — is identical
to a serial run (see docs/performance.md). ``on_error="raise"`` forces
serial execution so the first failure propagates with its traceback.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import zlib
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..resilience.faults import FaultInjector
from ..sim.config import ConfigError, CoreConfig, MemoryHierarchyConfig
from ..sim.errors import SimulationError
from ..sim.statistics import SystemStats
from .reporting import render_table
from .runner import (
    DEFAULT_MAX_CYCLES, Prepared, classify_failure, simulate,
)


@dataclass
class SweepPoint:
    """One configuration's results (or its failure record)."""

    parameters: Dict[str, object]
    stats: Optional[SystemStats]
    outcome: str = "ok"
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    @property
    def cycles(self) -> Optional[int]:
        return self.stats.cycles if self.stats is not None else None

    @property
    def ipc(self) -> Optional[float]:
        return self.stats.ipc if self.stats is not None else None

    @property
    def edp(self) -> Optional[float]:
        return self.stats.edp if self.stats is not None else None


@dataclass
class SweepResult:
    points: List[SweepPoint] = field(default_factory=list)

    def best(self, metric: str = "cycles") -> SweepPoint:
        successful = [p for p in self.points if p.ok]
        if not successful:
            raise ValueError("no successful points")
        return min(successful, key=lambda p: getattr(p, metric))

    def outcomes(self) -> Dict[str, int]:
        """Outcome label -> count, e.g. {"ok": 6, "deadlock": 1}."""
        return dict(Counter(point.outcome for point in self.points))

    def table(self, metrics: Sequence[str] = ("cycles", "ipc"),
              title: str = "") -> str:
        if not self.points:
            return title
        param_names = sorted(self.points[0].parameters)
        headers = param_names + list(metrics) + ["outcome"]
        rows = []
        for point in self.points:
            row = [point.parameters[name] for name in param_names]
            for metric in metrics:
                value = getattr(point, metric)
                row.append(value if value is not None else "-")
            row.append(point.outcome)
            rows.append(row)
        return render_table(headers, rows, title=title)


def _run_point(parameters: Dict[str, object], simulate_call,
               on_error: str) -> SweepPoint:
    try:
        stats = simulate_call()
    except (SimulationError, ConfigError) as exc:
        if on_error == "raise":
            raise
        return SweepPoint(parameters, None, outcome=classify_failure(exc),
                          error=str(exc))
    return SweepPoint(parameters, stats)


# -- sweep execution: serial or worker pool --------------------------------
#
# A sweep point is (parameters, spec): ``parameters`` labels the point in
# the result table; ``spec`` is a pure-data dict of ``simulate`` keyword
# arguments, plus two convenience keys resolved at run time —
# ``hierarchy_factory`` (rebuilds a cold memory config per point) and
# ``plan`` (a FaultPlan wired in as a fresh FaultInjector). Pure data is
# what makes the spec picklable, which is what lets a worker process
# execute it against its own copy of the Prepared workload.

#: per-worker-process Prepared workload, installed by _worker_init
_WORKER_PREPARED: Optional[Prepared] = None


def _worker_init(payload: bytes) -> None:
    global _WORKER_PREPARED
    _WORKER_PREPARED = pickle.loads(zlib.decompress(payload))


def _execute_spec(prepared: Prepared, spec: Dict) -> SystemStats:
    spec = dict(spec)
    factory = spec.pop("hierarchy_factory", None)
    if factory is not None:
        spec["hierarchy"] = factory()
    plan = spec.pop("plan", None)
    if plan is not None:
        plan.validate()
        spec["injector"] = FaultInjector(plan)
    return simulate(prepared.function, [], prepared=prepared, **spec)


def _worker_point(task: Tuple[Dict, Dict, str]) -> SweepPoint:
    parameters, spec, on_error = task
    return _run_point(
        parameters, lambda: _execute_spec(_WORKER_PREPARED, spec), on_error)


def _execute_sweep(prepared: Prepared, tasks: List[Tuple[Dict, Dict]],
                   on_error: str, jobs: int) -> SweepResult:
    """Run every (parameters, spec) task; in order, serially or on a pool.

    Workers receive the Prepared workload once (compressed pickle via the
    pool initializer), then stream pure-data specs. ``Pool.map`` returns
    results in submission order, so the SweepResult is bit-identical to a
    serial sweep — each point's simulation is an isolated deterministic
    run either way. ``on_error="raise"`` executes serially so the first
    failure propagates with a usable traceback.
    """
    result = SweepResult()
    jobs = min(jobs, len(tasks))
    if jobs <= 1 or len(tasks) <= 1 or on_error == "raise":
        for parameters, spec in tasks:
            result.points.append(_run_point(
                parameters, lambda s=spec: _execute_spec(prepared, s),
                on_error))
        return result
    payload = zlib.compress(pickle.dumps(prepared, protocol=4), 6)
    with multiprocessing.Pool(jobs, initializer=_worker_init,
                              initargs=(payload,)) as pool:
        result.points = pool.map(
            _worker_point, [(p, s, on_error) for p, s in tasks])
    return result


def sweep_core(prepared: Prepared, base: CoreConfig,
               grid: Dict[str, Iterable], *,
               hierarchy: Optional[MemoryHierarchyConfig] = None,
               hierarchy_factory: Optional[
                   Callable[[], MemoryHierarchyConfig]] = None,
               num_tiles: int = 1,
               max_cycles: int = DEFAULT_MAX_CYCLES,
               wall_clock_limit: Optional[float] = None,
               on_error: str = "record",
               jobs: int = 1) -> SweepResult:
    """Simulate ``prepared`` under every combination of core-config
    overrides in ``grid`` (a dict of CoreConfig field -> values).

    The special grid key ``"plan"`` holds :class:`FaultPlan` values (or
    ``None``) instead of a core-config field: each point runs under a
    fresh :class:`FaultInjector` for its plan, so fault scenarios sweep
    like any other axis.

    ``hierarchy_factory`` rebuilds the memory system per point (cold
    caches for every configuration); passing ``hierarchy`` reuses one
    config object but still constructs a fresh MemorySystem per run.

    ``on_error="record"`` (default) turns failures into non-``ok``
    points; ``on_error="raise"`` propagates the first failure.
    ``jobs > 1`` distributes points over a worker pool (same results,
    same order).
    """
    names = sorted(grid)
    tasks = []
    for combo in itertools.product(*(list(grid[name]) for name in names)):
        overrides = dict(zip(names, combo))
        core_overrides = dict(overrides)
        plan = core_overrides.pop("plan", None)
        spec = {
            "core": replace(base, **core_overrides),
            "num_tiles": num_tiles,
            "max_cycles": max_cycles,
            "wall_clock_limit": wall_clock_limit,
            "plan": plan,
        }
        if hierarchy_factory is not None:
            spec["hierarchy_factory"] = hierarchy_factory
        else:
            spec["hierarchy"] = hierarchy
        tasks.append((overrides, spec))
    return _execute_sweep(prepared, tasks, on_error, jobs)


def sweep_hierarchy(prepared: Prepared, core: CoreConfig,
                    configurations: Dict[str, MemoryHierarchyConfig], *,
                    num_tiles: int = 1,
                    max_cycles: int = DEFAULT_MAX_CYCLES,
                    wall_clock_limit: Optional[float] = None,
                    on_error: str = "record",
                    jobs: int = 1) -> SweepResult:
    """Simulate ``prepared`` under each named memory-hierarchy config."""
    tasks = [({"hierarchy": name},
              {"core": core, "num_tiles": num_tiles,
               "hierarchy": hierarchy, "max_cycles": max_cycles,
               "wall_clock_limit": wall_clock_limit})
             for name, hierarchy in configurations.items()]
    return _execute_sweep(prepared, tasks, on_error, jobs)


def sweep_runs(prepared: Prepared, runs: Dict[str, Dict], *,
               on_error: str = "record",
               jobs: int = 1) -> SweepResult:
    """Simulate ``prepared`` once per named run configuration.

    Each value of ``runs`` is a dict of :func:`simulate` keyword
    arguments (``core``, ``hierarchy``, ``max_cycles``, ...) plus an
    optional ``"plan"`` key holding a :class:`FaultPlan` for that run.
    Failing runs are recorded (deadlock/timeout/fault/...) and the sweep
    continues — the acceptance scenario for resilient exploration.
    """
    tasks = [({"run": name}, dict(kwargs)) for name, kwargs in runs.items()]
    return _execute_sweep(prepared, tasks, on_error, jobs)
