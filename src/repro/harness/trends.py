"""Microprocessor trend data — Figure 1.

The paper recreates Karl Rupp's "42 Years of Microprocessor Trend Data".
The original dataset is not redistributable here, so this module
synthesizes the five series from well-known piecewise trends (documented
in DESIGN.md): transistor counts double every ~2 years (Moore), frequency
grows ~1.25x/year until the ~2004 Dennard wall then plateaus, typical
power saturates near ~100 W, single-thread performance follows frequency
x IPC gains then flattens, and logical core counts stay at 1 until ~2004
and then grow geometrically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List


@dataclass
class TrendPoint:
    year: int
    transistors_k: float       # thousands
    frequency_mhz: float
    power_w: float
    single_thread_perf: float  # SpecINT x 1000
    cores: float


def microprocessor_trends(start: int = 1971, end: int = 2017
                          ) -> List[TrendPoint]:
    points = []
    for year in range(start, end + 1):
        t = year - start
        transistors = 2.3 * 2 ** (t / 2.1)          # Moore's law from 4004
        if year <= 2004:
            freq = 0.74 * (1.28 ** t)               # ~0.74 MHz in 1971
            freq = min(freq, 3800.0)
        else:
            freq = 3400.0                           # Dennard wall plateau
        power = min(0.4 * (1.18 ** t), 105.0)       # TDP saturates ~100W
        if year <= 2004:
            perf = 0.0005 * (1.52 ** t)             # frequency + IPC gains
        else:
            perf = 0.0005 * (1.52 ** (2004 - start)) * \
                (1.035 ** (year - 2004))            # ~3.5%/yr afterwards
        if year < 2004:
            cores = 1.0
        else:
            cores = min(2 ** ((year - 2004) / 2.4), 64.0)
        points.append(TrendPoint(year, transistors, freq, power,
                                 perf * 1000.0, cores))
    return points


def series(points: List[TrendPoint]) -> Dict[str, List[float]]:
    return {
        "year": [p.year for p in points],
        "transistors_k": [p.transistors_k for p in points],
        "frequency_mhz": [p.frequency_mhz for p in points],
        "power_w": [p.power_w for p in points],
        "single_thread_perf": [p.single_thread_perf for p in points],
        "cores": [p.cores for p in points],
    }


def render_figure1(points: List[TrendPoint], every: int = 4) -> str:
    """ASCII rendering of Figure 1 (log10 values per series)."""
    lines = [
        f"{'year':>6} {'transistors(k)':>15} {'freq(MHz)':>10} "
        f"{'power(W)':>9} {'ST perf':>9} {'cores':>6}"
    ]
    for p in points[::every]:
        lines.append(
            f"{p.year:>6} {p.transistors_k:>15.1f} {p.frequency_mhz:>10.1f} "
            f"{p.power_w:>9.1f} {p.single_thread_perf:>9.3f} {p.cores:>6.1f}")
    return "\n".join(lines)


def stagnation_year(points: List[TrendPoint],
                    growth_threshold: float = 1.02) -> int:
    """First year frequency growth drops below ``growth_threshold``
    (the Dennard-scaling wall the paper's Figure 1 illustrates)."""
    for prev, cur in zip(points, points[1:]):
        if prev.frequency_mhz > 0 and \
                cur.frequency_mhz / prev.frequency_mhz < growth_threshold:
            return cur.year
    return points[-1].year
