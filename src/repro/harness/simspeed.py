"""Simulation-speed measurement (paper §VI-B).

The paper reports MosaicSim reaching up to 0.47 MIPS single-threaded,
comparable to Sniper (0.45 MIPS) and an order of magnitude above gem5
(0.053 MIPS). This harness measures *this* implementation's simulation
throughput (simulated instructions per wall-clock second) and reports it
next to the paper's quoted numbers. Being pure Python, the reproduction
is expected to be well below the C++ original — the relevant
reproduction claims are the *relative* observations: accelerator
performance models are orders of magnitude faster than cycle-level
simulation, and trace footprints stay modest.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..sim.accelerator.library import sgemm_design
from ..sim.accelerator.perf_model import GenericPerformanceModel
from ..sim.config import CoreConfig
from ..telemetry.profiler import ProfileReport, SelfProfiler
from .runner import Prepared, prepare, simulate
from .systems import dae_hierarchy, ooo_core

#: bump when the BENCH_simspeed.json layout changes incompatibly
BENCH_SCHEMA_VERSION = 1

#: paper-quoted comparison points (§VI-B), MIPS
PAPER_MIPS = {
    "MosaicSim (paper, C++)": 0.47,
    "Sniper (paper)": 0.45,
    "gem5 (paper)": 0.053,
}


@dataclass
class SpeedReport:
    simulated_instructions: int
    wall_seconds: float
    #: closed-form accelerator model invocations per second
    accel_models_per_second: float
    #: per-phase self-profile (set when measured with profile=True)
    profile: Optional[ProfileReport] = None

    @property
    def mips(self) -> float:
        return self.simulated_instructions / self.wall_seconds / 1e6

    def as_dict(self) -> dict:
        document = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "mips": self.mips,
            "simulated_instructions": self.simulated_instructions,
            "wall_seconds": self.wall_seconds,
            "accel_models_per_second": self.accel_models_per_second,
            "paper_mips": dict(PAPER_MIPS),
        }
        if self.profile is not None:
            document["profile"] = self.profile.as_dict()
        return document


def write_bench_json(report: SpeedReport, path: str) -> None:
    """Serialize a :class:`SpeedReport` to ``BENCH_simspeed.json``."""
    with open(path, "w") as handle:
        json.dump(report.as_dict(), handle, indent=2)
        handle.write("\n")


def measure_simulation_speed(prepared: Prepared,
                             core: Optional[CoreConfig] = None,
                             profile: bool = False) -> SpeedReport:
    """Simulate prepared traces and measure wall-clock throughput.

    With ``profile=True`` the run carries a :class:`SelfProfiler`, so
    the report also says *where* the wall-clock time went."""
    core = core if core is not None else ooo_core()
    profiler = SelfProfiler() if profile else None
    start = time.perf_counter()
    stats = simulate(prepared.function, [], core=core,
                     hierarchy=dae_hierarchy(), prepared=prepared,
                     profiler=profiler)
    wall = time.perf_counter() - start

    # accelerator performance-model speed: closed-form evaluations/second
    model = GenericPerformanceModel(sgemm_design())
    calls = 2000
    accel_start = time.perf_counter()
    for _ in range(calls):
        model.estimate({"n": 64, "m": 64, "k": 64})
    accel_wall = time.perf_counter() - accel_start
    return SpeedReport(stats.instructions, wall, calls / accel_wall,
                       profile=profiler.report if profiler else None)


def trace_footprint_bytes(prepared: Prepared) -> Dict[str, int]:
    """Approximate on-disk trace sizes (§VI-B storage discussion)."""
    import pickle
    import zlib
    total = 0
    blocks = 0
    addresses = 0
    for trace in prepared.traces:
        payload = zlib.compress(pickle.dumps(trace, protocol=4), 6)
        total += len(payload)
        blocks += len(trace.block_trace)
        addresses += trace.num_memory_accesses
    return {"compressed_bytes": total, "dbbs": blocks,
            "memory_accesses": addresses}
