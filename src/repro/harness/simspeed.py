"""Simulation-speed measurement (paper §VI-B).

The paper reports MosaicSim reaching up to 0.47 MIPS single-threaded,
comparable to Sniper (0.45 MIPS) and an order of magnitude above gem5
(0.053 MIPS). This harness measures *this* implementation's simulation
throughput (simulated instructions per wall-clock second) and reports it
next to the paper's quoted numbers. Being pure Python, the reproduction
is expected to be well below the C++ original — the relevant
reproduction claims are the *relative* observations: accelerator
performance models are orders of magnitude faster than cycle-level
simulation, and trace footprints stay modest.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..sim.accelerator.library import sgemm_design
from ..sim.accelerator.perf_model import GenericPerformanceModel
from ..sim.config import CoreConfig
from ..telemetry.profiler import ProfileReport, SelfProfiler
from .runner import DEFAULT_MAX_CYCLES, Prepared, prepare, simulate
from .systems import dae_hierarchy, ooo_core

#: bump when the BENCH_simspeed.json layout changes incompatibly
#: (v2: headline ``mips`` is derived from the self-profile when one was
#: captured, and an optional ``parallel_sweep`` block records sweep
#: scaling — see ``measure_sweep_scaling``; v3: an optional
#: ``prepare_cache`` block records cold-vs-hit prepare wall time — see
#: ``measure_prepare_cache``)
BENCH_SCHEMA_VERSION = 3

#: paper-quoted comparison points (§VI-B), MIPS
PAPER_MIPS = {
    "MosaicSim (paper, C++)": 0.47,
    "Sniper (paper)": 0.45,
    "gem5 (paper)": 0.053,
}


@dataclass
class SpeedReport:
    simulated_instructions: int
    wall_seconds: float
    #: closed-form accelerator model invocations per second
    accel_models_per_second: float
    #: per-phase self-profile (set when measured with profile=True)
    profile: Optional[ProfileReport] = None
    #: serial-vs-parallel sweep timing (from measure_sweep_scaling)
    parallel_sweep: Optional[Dict] = None
    #: cold-vs-hit prepare timing (from measure_prepare_cache)
    prepare_cache: Optional[Dict] = None

    @property
    def mips(self) -> float:
        # The headline figure is derived from the self-profile when one
        # was captured: the profile and the outer timer are independent
        # clocks, and publishing both (slightly disagreeing) numbers made
        # BENCH_simspeed.json self-inconsistent. The outer timer remains
        # in ``wall_seconds`` (it additionally covers run setup).
        if self.profile is not None and self.profile.wall_seconds:
            return self.profile.mips
        return self.simulated_instructions / self.wall_seconds / 1e6

    def as_dict(self) -> dict:
        document = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "mips": self.mips,
            "simulated_instructions": self.simulated_instructions,
            "wall_seconds": self.wall_seconds,
            "accel_models_per_second": self.accel_models_per_second,
            "paper_mips": dict(PAPER_MIPS),
        }
        if self.profile is not None:
            document["profile"] = self.profile.as_dict()
        if self.parallel_sweep is not None:
            document["parallel_sweep"] = dict(self.parallel_sweep)
        if self.prepare_cache is not None:
            document["prepare_cache"] = dict(self.prepare_cache)
        return document


def write_bench_json(report: SpeedReport, path: str) -> None:
    """Serialize a :class:`SpeedReport` to ``BENCH_simspeed.json``."""
    document = report.as_dict()
    profile = document.get("profile")
    if profile is not None:
        # the file must carry ONE MIPS figure: the headline is defined
        # as the profile's number whenever a profile was captured
        assert document["mips"] == profile["mips"], (
            f"headline mips {document['mips']} disagrees with "
            f"profile.mips {profile['mips']}")
    from ..ioutil import atomic_write_json
    atomic_write_json(path, document, indent=2)


def measure_simulation_speed(prepared: Prepared,
                             core: Optional[CoreConfig] = None,
                             profile: bool = False) -> SpeedReport:
    """Simulate prepared traces and measure wall-clock throughput.

    With ``profile=True`` the run carries a :class:`SelfProfiler`, so
    the report also says *where* the wall-clock time went."""
    core = core if core is not None else ooo_core()
    profiler = SelfProfiler() if profile else None
    start = time.perf_counter()
    stats = simulate(prepared.function, [], core=core,
                     hierarchy=dae_hierarchy(), prepared=prepared,
                     profiler=profiler)
    wall = time.perf_counter() - start

    # accelerator performance-model speed: closed-form evaluations/second
    model = GenericPerformanceModel(sgemm_design())
    calls = 2000
    accel_start = time.perf_counter()
    for _ in range(calls):
        model.estimate({"n": 64, "m": 64, "k": 64})
    accel_wall = time.perf_counter() - accel_start
    return SpeedReport(stats.instructions, wall, calls / accel_wall,
                       profile=profiler.report if profiler else None)


def _point_fingerprint(point) -> tuple:
    """A comparable record of one sweep point: its full stats report (or
    its failure record) — the unit of the bit-identical contract."""
    from ..telemetry import stats_to_dict
    stats = (stats_to_dict(point.stats)
             if point.stats is not None else None)
    return (point.parameters, point.outcome, point.error, stats)


def measure_sweep_scaling(prepared: Prepared, core: CoreConfig,
                          grid: Dict[str, Iterable], *,
                          jobs: int = 4,
                          hierarchy=None, hierarchy_factory=None,
                          num_tiles: int = 1,
                          max_cycles: int = DEFAULT_MAX_CYCLES,
                          wall_clock_limit: Optional[float] = None) -> Dict:
    """Time the same ``sweep_core`` grid serially and with ``jobs``
    workers, and check the per-point reports are bit-identical.

    Returns the ``parallel_sweep`` block for ``BENCH_simspeed.json``:
    points, jobs, serial/parallel wall seconds, the parallel:serial
    ratio, ``identical`` (the determinism contract), and ``cpus`` (the
    CPUs the pool could actually use — on a single-CPU host the ratio
    measures pool overhead, not speedup; see docs/performance.md).
    """
    from .sweeps import sweep_core

    def run(jobs_n: int):
        start = time.perf_counter()
        result = sweep_core(
            prepared, core, grid, hierarchy=hierarchy,
            hierarchy_factory=hierarchy_factory, num_tiles=num_tiles,
            max_cycles=max_cycles, wall_clock_limit=wall_clock_limit,
            jobs=jobs_n)
        return result, time.perf_counter() - start

    serial, serial_wall = run(1)
    parallel, parallel_wall = run(jobs)
    identical = (
        [_point_fingerprint(p) for p in serial.points]
        == [_point_fingerprint(p) for p in parallel.points])
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus = os.cpu_count() or 1
    return {
        "points": len(serial.points),
        "jobs": jobs,
        "cpus": cpus,
        "serial_seconds": serial_wall,
        "parallel_seconds": parallel_wall,
        "ratio": parallel_wall / serial_wall if serial_wall else 0.0,
        "identical": identical,
        "outcomes": serial.outcomes(),
    }


def measure_prepare_cache(build_workload, *, num_tiles: int = 1,
                          cache=None, cache_root: Optional[str] = None
                          ) -> Dict:
    """Time one cold prepare (compile + DDG + trace generation + store)
    against one cache-hit replay of the same workload.

    ``build_workload`` is a zero-argument callable returning a fresh
    workload (kernel/args/memory) — the hit must start from a pristine
    initial memory image, since the key covers memory content and the
    cold run mutates it. Returns the ``prepare_cache`` block for
    ``BENCH_simspeed.json``.
    """
    import tempfile

    from .prepcache import PrepareCache
    if cache is None:
        cache = PrepareCache(
            cache_root or tempfile.mkdtemp(prefix="repro-prepcache-"))
    cold_workload = build_workload()
    start = time.perf_counter()
    cold = prepare(cold_workload.kernel, cold_workload.args,
                   num_tiles=num_tiles, memory=cold_workload.memory,
                   cache=cache)
    cold_seconds = time.perf_counter() - start
    hit_workload = build_workload()
    start = time.perf_counter()
    hit = prepare(hit_workload.kernel, hit_workload.args,
                  num_tiles=num_tiles, memory=hit_workload.memory,
                  cache=cache)
    hit_seconds = time.perf_counter() - start
    return {
        "kernel": cold.function.name,
        "num_tiles": num_tiles,
        "cold_seconds": cold_seconds,
        "hit_seconds": hit_seconds,
        "speedup": cold_seconds / hit_seconds if hit_seconds > 0 else 0.0,
        "hit": hit.cache_hit,
        "key": hit.cache_key,
        "payload_bytes": cache.stats()["total_bytes"],
    }


def trace_footprint_bytes(prepared: Prepared) -> Dict[str, int]:
    """Approximate on-disk trace sizes (§VI-B storage discussion)."""
    import pickle
    import zlib
    total = 0
    blocks = 0
    addresses = 0
    for trace in prepared.traces:
        payload = zlib.compress(pickle.dumps(trace, protocol=4), 6)
        total += len(payload)
        blocks += len(trace.block_trace)
        addresses += trace.num_memory_accesses
    return {"compressed_bytes": total, "dbbs": blocks,
            "memory_accesses": addresses}
