"""ASCII rendering helpers for benchmark reports (tables and bar charts
mirroring the paper's figures)."""

from __future__ import annotations

import math
import warnings
from typing import Dict, Iterable, List, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; degenerate inputs (empty, zero or negative
    entries) return 0.0 with a warning instead of raising, so one bad
    sweep point cannot kill a whole report."""
    values = [v for v in values]
    if not values:
        warnings.warn("geomean of empty sequence; returning 0.0",
                      stacklevel=2)
        return 0.0
    if any(v <= 0 for v in values):
        warnings.warn(
            "geomean of non-positive values; returning 0.0", stacklevel=2)
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width table; floats rendered with 3 decimals."""
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    cells = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(values: Dict[str, float], width: int = 40,
                title: str = "", unit: str = "") -> str:
    """Horizontal ASCII bar chart (the paper's bar figures)."""
    if not values:
        return title
    peak = max(values.values())
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        if peak > 0 and value > 0:
            bar = "#" * max(1, int(round(width * value / peak)))
        else:
            # all-zero (or negative) inputs render without bars rather
            # than dividing by a zero peak
            bar = ""
        lines.append(f"{key.ljust(label_width)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def _stack_bars(categories: Dict[str, int], total: int,
                width: int) -> List[str]:
    ordered = sorted(categories.items(), key=lambda kv: (-kv[1], kv[0]))
    if not ordered:
        # a tile that touched no memory (or an idle lane) reports an
        # empty category dict — render a placeholder instead of letting
        # max() blow up on the empty sequence
        return ["  (no attributed cycles)"]
    label_width = max(len(c) for c, _ in ordered)
    peak = max((v for _, v in ordered), default=0)
    lines = []
    for category, cycles in ordered:
        bar = "#" * max(1, int(round(width * cycles / peak))) \
            if peak and cycles else ""
        share = 100.0 * cycles / total if total else 0.0
        lines.append(f"  {category.ljust(label_width)} | "
                     f"{bar} {cycles} ({share:.1f}%)")
    return lines


def render_attribution_report(document: dict, top: int = 3,
                              width: int = 32) -> str:
    """Render an ``analyze`` report (schema v2): per-tile CPI stacks,
    a top-N bottleneck diagnosis, fabric stall counters, and the
    roofline capture when present. ``document`` is a ``stats_to_dict``
    result that passed ``validate_report``."""
    attribution = document["attribution"]
    lines = [f"cycle attribution: {attribution['total_cycles']} cycles"]
    aggregate: Dict[str, int] = {}
    aggregate_total = 0
    for name, entry in attribution["tiles"].items():
        total = entry["total_cycles"]
        header = f"{name} ({entry['kind']}, {total} cycles"
        if entry.get("instructions"):
            header += (f", {entry['instructions']} instructions"
                       f", CPI {entry['cpi']:.3f}")
        header += ")"
        lines.append("")
        lines.append(header)
        lines.extend(_stack_bars(entry["categories"], total, width))
        aggregate_total += total
        for category, cycles in entry["categories"].items():
            aggregate[category] = aggregate.get(category, 0) + cycles
    ranked = sorted(aggregate.items(), key=lambda kv: (-kv[1], kv[0]))
    lines.append("")
    lines.append(f"top {min(top, len(ranked))} categories "
                 f"(all tiles, {aggregate_total} tile-cycles):")
    for rank, (category, cycles) in enumerate(ranked[:top], 1):
        share = 100.0 * cycles / aggregate_total if aggregate_total else 0.0
        lines.append(f"  {rank}. {category}: {cycles} ({share:.1f}%)")
    fabric = attribution.get("fabric") or {}
    full = fabric.get("queue_full_stalls") or {}
    empty = fabric.get("queue_empty_stalls") or {}
    if full or empty or fabric.get("recv_waits"):
        lines.append("")
        lines.append("fabric stalls:")
        for queue, count in full.items():
            lines.append(f"  queue {queue} full: {count} producer stall(s)")
        for queue, count in empty.items():
            lines.append(f"  queue {queue} empty: {count} consumer stall(s)")
        if fabric.get("recv_waits"):
            lines.append(f"  recv waits: {fabric['recv_waits']}")
    roofline = document.get("roofline")
    if roofline:
        lines.append("")
        lines.append(
            f"roofline: {roofline['flops']} flops, "
            f"{roofline['dram_bytes']} DRAM bytes "
            f"(AI {roofline['arithmetic_intensity']:.3f} flops/byte, "
            f"peak BW {roofline['dram_peak_bytes_per_cycle']:.2f} B/cycle)")
        for name, tile in roofline.get("tiles", {}).items():
            lines.append(
                f"  {name}: {tile['bound']}-bound, achieved IPC "
                f"{tile['achieved_ipc']:.3f} / attainable "
                f"{tile['attainable_ipc']:.3f} (peak {tile['peak_ipc']:.1f},"
                f" AI {tile['arithmetic_intensity']:.3f})")
    return "\n".join(lines)


def render_report_diff(diff: dict, top: int = 5) -> str:
    """Render a ``repro diff`` result (``diff_reports`` output):
    cycle delta, speedup, and the categories the delta is attributed
    to. Positive deltas are regressions (more cycles spent there)."""
    delta = diff["cycles_delta"]
    lines = [
        f"cycles: {diff['cycles_before']} -> {diff['cycles_after']} "
        f"({delta:+d}, {diff['speedup']:.2f}x speedup)"]
    categories = diff["categories"]
    if categories:
        rows = [
            [category, entry["before"], entry["after"],
             f"{entry['delta']:+d}"]
            for category, entry in sorted(
                categories.items(),
                key=lambda kv: (-abs(kv[1]["delta"]), kv[0]))]
        lines.append(render_table(
            ["category", "before", "after", "delta"], rows,
            title="category deltas (cycles, all shared tiles):"))
    lines.append(
        f"memory-stall delta: {diff['memory_stall_delta']:+d} cycle(s)")
    regressions = diff["top_regressions"][:top]
    if regressions:
        worst = ", ".join(f"{category} ({grown:+d})"
                          for category, grown in regressions)
        lines.append(f"top regressions: {worst}")
    for key, label in (("tiles_only_before", "only in A"),
                       ("tiles_only_after", "only in B")):
        if diff[key]:
            lines.append(f"tiles {label}: {', '.join(diff[key])}")
    return "\n".join(lines)


# -- data-movement observatory rendering (schema v3 ``memory`` block) --------

#: density ramp for terminal heatmaps; index 0 is "no events"
_SHADES = " .:-=+*#%@"


def _collapse(values: Sequence[int], width: int) -> List[int]:
    """Sum ``values`` into at most ``width`` columns (per-set arrays can
    be thousands of sets wide; a terminal row is not)."""
    if len(values) <= width:
        return list(values)
    columns = [0] * width
    for index, value in enumerate(values):
        columns[index * width // len(values)] += value
    return columns


def _heat_row(values: Sequence[int], width: int) -> str:
    """One heatmap row: each column shaded by its share of the peak."""
    columns = _collapse(values, width)
    peak = max(columns, default=0)
    if peak <= 0:
        return " " * len(columns)
    top = len(_SHADES) - 1
    return "".join(
        _SHADES[0] if value <= 0
        else _SHADES[max(1, min(top, round(top * value / peak)))]
        for value in columns)


def _fmt_pct(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:.1f}%" if whole else "-"


def _fmt_percentile(value) -> str:
    # None is the documented empty-histogram sentinel
    return "-" if value is None else f"{value:g}"


def _reuse_summary(reuse: dict) -> str:
    sampled = reuse.get("sampled", reuse.get("count", 0))
    return (f"sampled {sampled}/{reuse.get('accesses', 0)} "
            f"(cold {reuse.get('cold_samples', 0)})  "
            f"p50 {_fmt_percentile(reuse.get('p50'))}  "
            f"p90 {_fmt_percentile(reuse.get('p90'))}  "
            f"p99 {_fmt_percentile(reuse.get('p99'))}")


def _link_rows(ledger: dict, width: int, top: int) -> List[str]:
    """Per-link utilization sparklines over the epoch axis, busiest
    links first."""
    links = ledger.get("links") or {}
    if not links:
        return ["  (no traversals)"]
    span = max(1, ledger.get("epoch_cycles", 1))
    last_epoch = max(
        (int(e) for entry in links.values()
         for e in (entry.get("epochs") or {})), default=0)
    ranked = sorted(links.items(),
                    key=lambda kv: (-kv[1].get("busy", 0), kv[0]))
    label_width = max(len(name) for name, _ in ranked[:top])
    lines = []
    for name, entry in ranked[:top]:
        series = [0] * (last_epoch + 1)
        for epoch, point in (entry.get("epochs") or {}).items():
            series[int(epoch)] = point.get("busy", 0)
        busy = entry.get("busy", 0)
        demand = entry.get("demand", 0)
        util = _fmt_pct(busy, span * len(series))
        note = f" (demand {demand})" if demand > busy else ""
        lines.append(f"  {name.ljust(label_width)} |"
                     f"{_heat_row(series, width)}| "
                     f"busy {busy} cyc, {util} util{note}")
    if len(ranked) > top:
        lines.append(f"  ... {len(ranked) - top} more link(s)")
    return lines


def render_memstat_report(document: dict, width: int = 48,
                          top_links: int = 8) -> str:
    """Render a report's ``memory`` block (``repro memstat``): miss
    classification table, per-set conflict heatmaps, reuse-distance
    summaries, DRAM bank locality, and link-utilization time series.
    ``document`` is a full ``stats_to_dict`` report carrying a
    ``memory`` block (schema v3)."""
    memory = document.get("memory")
    if not memory:
        return ("(report carries no memory block — rerun with "
                "`repro memstat` / --memstat)")
    lines = [f"data-movement observatory (sample every "
             f"{memory.get('sample_every', '?')}, epoch "
             f"{memory.get('epoch_cycles', '?')} cycles, line "
             f"{memory.get('line_bytes', '?')} B)"]

    caches = memory.get("caches") or {}
    if caches:
        rows = []
        for level, entry in sorted(caches.items()):
            misses = entry["misses"]
            rows.append([
                level, entry["instances"],
                f"{entry['num_sets']}x{entry['associativity']}",
                misses,
                f"{entry['compulsory']} ({_fmt_pct(entry['compulsory'], misses)})",
                f"{entry['capacity']} ({_fmt_pct(entry['capacity'], misses)})",
                f"{entry['conflict']} ({_fmt_pct(entry['conflict'], misses)})",
            ])
        lines.append("")
        lines.append(render_table(
            ["level", "inst", "geometry", "misses", "compulsory",
             "capacity", "conflict"],
            rows, title="miss classification (demand misses, all "
                        "instances per level):"))
        for level, entry in sorted(caches.items()):
            set_misses = entry.get("set_misses") or []
            if not any(set_misses):
                continue
            lines.append("")
            lines.append(
                f"{level} per-set heatmap ({entry['num_sets']} sets, "
                f"peak {max(set_misses)} misses/set):")
            lines.append(f"  misses    |{_heat_row(set_misses, width)}|")
            set_conflicts = entry.get("set_conflicts") or []
            if any(set_conflicts):
                lines.append(
                    f"  conflicts |{_heat_row(set_conflicts, width)}| "
                    f"peak {max(set_conflicts)}")

    reuse_lines = []
    for level, entry in sorted(caches.items()):
        reuse = entry.get("reuse_distance")
        if reuse and reuse.get("accesses"):
            reuse_lines.append(f"  {level}: {_reuse_summary(reuse)}")
    for core, reuse in sorted((memory.get("tiles") or {}).items(),
                              key=lambda kv: int(kv[0])):
        if reuse.get("accesses"):
            reuse_lines.append(f"  tile {core}: {_reuse_summary(reuse)}")
    if reuse_lines:
        lines.append("")
        lines.append("reuse distance (distinct lines between reuses):")
        lines.extend(reuse_lines)

    dram = memory.get("dram")
    if dram and dram.get("accesses"):
        accesses = dram["accesses"]
        lines.append("")
        lines.append(
            f"DRAM row-buffer locality ({dram['model']}, "
            f"{dram['banks']} banks, {dram['row_bytes']} B rows, "
            f"{accesses} accesses):")
        lines.append(
            f"  row hits {dram['row_hits']} "
            f"({_fmt_pct(dram['row_hits'], accesses)})  "
            f"misses {dram['row_misses']} "
            f"({_fmt_pct(dram['row_misses'], accesses)})  "
            f"conflicts {dram['row_conflicts']} "
            f"({_fmt_pct(dram['row_conflicts'], accesses)})")
        per_bank = dram.get("per_bank") or []
        for key, label in (("hits", "bank hits"),
                           ("conflicts", "bank conflicts")):
            series = [bank.get(key, 0) for bank in per_bank]
            if any(series):
                lines.append(f"  {label.ljust(14)}|"
                             f"{_heat_row(series, width)}| "
                             f"peak {max(series)}")

    for key, label in (("noc_links", "NoC link utilization"),
                       ("fabric_links", "fabric link traffic")):
        ledger = memory.get(key)
        if ledger and ledger.get("traversals"):
            lines.append("")
            lines.append(f"{label} ({ledger['traversals']} traversals, "
                         f"epoch {ledger['epoch_cycles']} cycles):")
            lines.extend(_link_rows(ledger, width, top_links))

    queues = memory.get("queues") or {}
    if queues:
        lines.append("")
        rows = [[name, entry.get("count", 0),
                 _fmt_percentile(entry.get("p50")),
                 _fmt_percentile(entry.get("p90")),
                 _fmt_percentile(entry.get("p99")),
                 entry.get("max") if entry.get("max") is not None else "-"]
                for name, entry in sorted(queues.items())]
        lines.append(render_table(
            ["queue", "samples", "p50", "p90", "p99", "max"], rows,
            title="DAE queue occupancy (entries):"))
    return "\n".join(lines)


def render_memory_diff(memory_diff: dict) -> str:
    """Render the ``memory`` section of a ``diff_reports`` result
    (``repro diff --memory``): per-level miss-class deltas plus the
    DRAM locality delta."""
    lines = []
    caches = memory_diff.get("caches") or {}
    if caches:
        rows = []
        for level, entry in sorted(caches.items()):
            for key in ("misses", "compulsory", "capacity", "conflict"):
                change = entry[key]
                rows.append([f"{level}.{key}", change["before"],
                             change["after"], f"{change['delta']:+d}"])
        lines.append(render_table(
            ["counter", "before", "after", "delta"], rows,
            title="memory deltas (miss classification):"))
    dram = memory_diff.get("dram")
    if dram:
        rows = [[key, change["before"], change["after"],
                 f"{change['delta']:+d}"]
                for key, change in sorted(dram.items())]
        lines.append(render_table(
            ["counter", "before", "after", "delta"], rows,
            title="DRAM locality deltas:"))
    if not lines:
        return "(no memory blocks to diff)"
    return "\n\n".join(lines)


def render_timeline(document: dict, width: int = 72,
                    title: str = "") -> str:
    """Plain-text rendering of a Chrome ``trace_event`` document: one
    row per lane (trace tid), spans drawn as ``#`` runs and instants as
    ``!`` over the simulated-time axis. Counter events are skipped.

    Complements the Perfetto flow for quick terminal inspection
    (``repro timeline trace.json``)."""
    events = [e for e in document.get("traceEvents", ())
              if e.get("ph") in ("X", "i")]
    lane_names = {
        e["tid"]: e.get("args", {}).get("name", "")
        for e in document.get("traceEvents", ())
        if e.get("ph") == "M" and e.get("name") == "thread_name"}
    lines = [title] if title else []
    if not events:
        lines.append("(no span or instant events)")
        return "\n".join(lines)
    start = min(e["ts"] for e in events)
    end = max(e["ts"] + e.get("dur", 0) for e in events)
    extent = max(1, end - start)
    lanes: Dict[int, List[str]] = {}
    for event in events:
        row = lanes.setdefault(event["tid"], [" "] * width)
        lo = (event["ts"] - start) * (width - 1) // extent
        if event["ph"] == "X":
            hi = (event["ts"] + event.get("dur", 0) - start) \
                * (width - 1) // extent
            for i in range(int(lo), int(hi) + 1):
                row[i] = "#"
        else:
            row[int(lo)] = "!"
    label_width = max(
        (len(lane_names.get(tid, f"tid {tid}")) for tid in lanes),
        default=0)
    lines.append(f"{'':{label_width}}  ts {start} .. {end} "
                 f"({len(events)} events)")
    for tid in sorted(lanes):
        label = lane_names.get(tid, f"tid {tid}")
        lines.append(f"{label:>{label_width}} |{''.join(lanes[tid])}|")
    return "\n".join(lines)


def render_campaign_report(document: Dict, width: int = 36) -> str:
    """Terminal rendering of a fault-campaign report block (see
    ``repro.resilience.campaign``): headline, a per-site outcome table
    with SDC confidence intervals, stacked outcome bars per site, and
    the SDC trials with their replay seeds."""
    golden = document.get("golden", {})
    lines = [
        f"fault campaign: {document.get('workload', '?')} — "
        f"{document.get('trials', 0)}/"
        f"{document.get('requested_trials', document.get('trials', 0))} "
        f"trial(s), seed {document.get('seed', 0)}"
        + ("  [early stop]" if document.get("early_stopped") else ""),
        f"golden: {golden.get('cycles', '?')} cycles, "
        f"{golden.get('segments', '?')} segment(s), "
        f"digest {str(golden.get('digest', ''))[:12]}",
    ]
    outcome_order = ["masked", "sdc", "detected", "hang", "config-error",
                     "worker_died"]
    per_site = document.get("per_site", {})
    rows = []
    for site in document.get("sites", sorted(per_site)):
        block = per_site.get(site)
        if block is None:
            continue
        sdc = block.get("sdc", {})
        low, high = sdc.get("ci", (0.0, 1.0))
        rows.append([site, block.get("trials", 0)]
                    + [block.get("outcomes", {}).get(o, 0)
                       for o in outcome_order]
                    + [f"{sdc.get('rate', 0.0):.3f}",
                       f"[{low:.3f}, {high:.3f}]"])
    if rows:
        lines.append(render_table(
            ["site", "trials"] + outcome_order + ["sdc-rate", "CI"],
            rows))
    for site in document.get("sites", sorted(per_site)):
        block = per_site.get(site)
        if block is None or not block.get("trials"):
            continue
        total = block["trials"]
        bar = []
        marks = {"masked": ".", "sdc": "X", "detected": "d", "hang": "h",
                 "config-error": "c", "worker_died": "w"}
        for outcome in outcome_order:
            count = block.get("outcomes", {}).get(outcome, 0)
            if count:
                span = max(1, round(width * count / total))
                bar.append(marks[outcome] * span)
        lines.append(f"  {site:<6} |{''.join(bar)[:width]:<{width}}| "
                     f"(. masked, X sdc, d detected, h hang)")
    sdc = document.get("sdc", {})
    low, high = sdc.get("ci", (0.0, 1.0))
    lines.append(f"aggregate SDC rate {sdc.get('rate', 0.0):.3f} "
                 f"(CI [{low:.3f}, {high:.3f}], "
                 f"{sdc.get('count', 0)}/{document.get('trials', 0)})")
    trials = sdc.get("trials", ())
    if trials:
        lines.append("SDC trials (seed replays the corruption under "
                     "`repro inject`):")
        for entry in trials:
            corrupted = ", ".join(entry.get("corrupted", ())) or "?"
            lines.append(f"  trial {entry.get('trial')}  "
                         f"site {entry.get('site')}  "
                         f"seed {entry.get('seed')}  "
                         f"{entry.get('faults', 0)} fault(s)  "
                         f"corrupted: {corrupted}")
    return "\n".join(lines)
