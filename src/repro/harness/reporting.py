"""ASCII rendering helpers for benchmark reports (tables and bar charts
mirroring the paper's figures)."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def geomean(values: Iterable[float]) -> float:
    values = [v for v in values]
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width table; floats rendered with 3 decimals."""
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    cells = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(values: Dict[str, float], width: int = 40,
                title: str = "", unit: str = "") -> str:
    """Horizontal ASCII bar chart (the paper's bar figures)."""
    if not values:
        return title
    peak = max(values.values())
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        bar = "#" * max(1, int(round(width * value / peak))) if peak > 0 \
            else ""
        lines.append(f"{key.ljust(label_width)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)
