"""ASCII rendering helpers for benchmark reports (tables and bar charts
mirroring the paper's figures)."""

from __future__ import annotations

import math
import warnings
from typing import Dict, Iterable, List, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; degenerate inputs (empty, zero or negative
    entries) return 0.0 with a warning instead of raising, so one bad
    sweep point cannot kill a whole report."""
    values = [v for v in values]
    if not values:
        warnings.warn("geomean of empty sequence; returning 0.0",
                      stacklevel=2)
        return 0.0
    if any(v <= 0 for v in values):
        warnings.warn(
            "geomean of non-positive values; returning 0.0", stacklevel=2)
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width table; floats rendered with 3 decimals."""
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    cells = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(values: Dict[str, float], width: int = 40,
                title: str = "", unit: str = "") -> str:
    """Horizontal ASCII bar chart (the paper's bar figures)."""
    if not values:
        return title
    peak = max(values.values())
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        if peak > 0 and value > 0:
            bar = "#" * max(1, int(round(width * value / peak)))
        else:
            # all-zero (or negative) inputs render without bars rather
            # than dividing by a zero peak
            bar = ""
        lines.append(f"{key.ljust(label_width)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def render_timeline(document: dict, width: int = 72,
                    title: str = "") -> str:
    """Plain-text rendering of a Chrome ``trace_event`` document: one
    row per lane (trace tid), spans drawn as ``#`` runs and instants as
    ``!`` over the simulated-time axis. Counter events are skipped.

    Complements the Perfetto flow for quick terminal inspection
    (``repro timeline trace.json``)."""
    events = [e for e in document.get("traceEvents", ())
              if e.get("ph") in ("X", "i")]
    lane_names = {
        e["tid"]: e.get("args", {}).get("name", "")
        for e in document.get("traceEvents", ())
        if e.get("ph") == "M" and e.get("name") == "thread_name"}
    lines = [title] if title else []
    if not events:
        lines.append("(no span or instant events)")
        return "\n".join(lines)
    start = min(e["ts"] for e in events)
    end = max(e["ts"] + e.get("dur", 0) for e in events)
    extent = max(1, end - start)
    lanes: Dict[int, List[str]] = {}
    for event in events:
        row = lanes.setdefault(event["tid"], [" "] * width)
        lo = (event["ts"] - start) * (width - 1) // extent
        if event["ph"] == "X":
            hi = (event["ts"] + event.get("dur", 0) - start) \
                * (width - 1) // extent
            for i in range(int(lo), int(hi) + 1):
                row[i] = "#"
        else:
            row[int(lo)] = "!"
    label_width = max(
        (len(lane_names.get(tid, f"tid {tid}")) for tid in lanes),
        default=0)
    lines.append(f"{'':{label_width}}  ts {start} .. {end} "
                 f"({len(events)} events)")
    for tid in sorted(lanes):
        label = lane_names.get(tid, f"tid {tid}")
        lines.append(f"{label:>{label_width}} |{''.join(lanes[tid])}|")
    return "\n".join(lines)
