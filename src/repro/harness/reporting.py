"""ASCII rendering helpers for benchmark reports (tables and bar charts
mirroring the paper's figures)."""

from __future__ import annotations

import math
import warnings
from typing import Dict, Iterable, List, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; degenerate inputs (empty, zero or negative
    entries) return 0.0 with a warning instead of raising, so one bad
    sweep point cannot kill a whole report."""
    values = [v for v in values]
    if not values:
        warnings.warn("geomean of empty sequence; returning 0.0",
                      stacklevel=2)
        return 0.0
    if any(v <= 0 for v in values):
        warnings.warn(
            "geomean of non-positive values; returning 0.0", stacklevel=2)
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width table; floats rendered with 3 decimals."""
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    cells = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(values: Dict[str, float], width: int = 40,
                title: str = "", unit: str = "") -> str:
    """Horizontal ASCII bar chart (the paper's bar figures)."""
    if not values:
        return title
    peak = max(values.values())
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        if peak > 0 and value > 0:
            bar = "#" * max(1, int(round(width * value / peak)))
        else:
            # all-zero (or negative) inputs render without bars rather
            # than dividing by a zero peak
            bar = ""
        lines.append(f"{key.ljust(label_width)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def _stack_bars(categories: Dict[str, int], total: int,
                width: int) -> List[str]:
    ordered = sorted(categories.items(), key=lambda kv: (-kv[1], kv[0]))
    label_width = max(len(c) for c, _ in ordered)
    peak = max((v for _, v in ordered), default=0)
    lines = []
    for category, cycles in ordered:
        bar = "#" * max(1, int(round(width * cycles / peak))) \
            if peak and cycles else ""
        share = 100.0 * cycles / total if total else 0.0
        lines.append(f"  {category.ljust(label_width)} | "
                     f"{bar} {cycles} ({share:.1f}%)")
    return lines


def render_attribution_report(document: dict, top: int = 3,
                              width: int = 32) -> str:
    """Render an ``analyze`` report (schema v2): per-tile CPI stacks,
    a top-N bottleneck diagnosis, fabric stall counters, and the
    roofline capture when present. ``document`` is a ``stats_to_dict``
    result that passed ``validate_report``."""
    attribution = document["attribution"]
    lines = [f"cycle attribution: {attribution['total_cycles']} cycles"]
    aggregate: Dict[str, int] = {}
    aggregate_total = 0
    for name, entry in attribution["tiles"].items():
        total = entry["total_cycles"]
        header = f"{name} ({entry['kind']}, {total} cycles"
        if entry.get("instructions"):
            header += (f", {entry['instructions']} instructions"
                       f", CPI {entry['cpi']:.3f}")
        header += ")"
        lines.append("")
        lines.append(header)
        lines.extend(_stack_bars(entry["categories"], total, width))
        aggregate_total += total
        for category, cycles in entry["categories"].items():
            aggregate[category] = aggregate.get(category, 0) + cycles
    ranked = sorted(aggregate.items(), key=lambda kv: (-kv[1], kv[0]))
    lines.append("")
    lines.append(f"top {min(top, len(ranked))} categories "
                 f"(all tiles, {aggregate_total} tile-cycles):")
    for rank, (category, cycles) in enumerate(ranked[:top], 1):
        share = 100.0 * cycles / aggregate_total if aggregate_total else 0.0
        lines.append(f"  {rank}. {category}: {cycles} ({share:.1f}%)")
    fabric = attribution.get("fabric") or {}
    full = fabric.get("queue_full_stalls") or {}
    empty = fabric.get("queue_empty_stalls") or {}
    if full or empty or fabric.get("recv_waits"):
        lines.append("")
        lines.append("fabric stalls:")
        for queue, count in full.items():
            lines.append(f"  queue {queue} full: {count} producer stall(s)")
        for queue, count in empty.items():
            lines.append(f"  queue {queue} empty: {count} consumer stall(s)")
        if fabric.get("recv_waits"):
            lines.append(f"  recv waits: {fabric['recv_waits']}")
    roofline = document.get("roofline")
    if roofline:
        lines.append("")
        lines.append(
            f"roofline: {roofline['flops']} flops, "
            f"{roofline['dram_bytes']} DRAM bytes "
            f"(AI {roofline['arithmetic_intensity']:.3f} flops/byte, "
            f"peak BW {roofline['dram_peak_bytes_per_cycle']:.2f} B/cycle)")
        for name, tile in roofline.get("tiles", {}).items():
            lines.append(
                f"  {name}: {tile['bound']}-bound, achieved IPC "
                f"{tile['achieved_ipc']:.3f} / attainable "
                f"{tile['attainable_ipc']:.3f} (peak {tile['peak_ipc']:.1f},"
                f" AI {tile['arithmetic_intensity']:.3f})")
    return "\n".join(lines)


def render_report_diff(diff: dict, top: int = 5) -> str:
    """Render a ``repro diff`` result (``diff_reports`` output):
    cycle delta, speedup, and the categories the delta is attributed
    to. Positive deltas are regressions (more cycles spent there)."""
    delta = diff["cycles_delta"]
    lines = [
        f"cycles: {diff['cycles_before']} -> {diff['cycles_after']} "
        f"({delta:+d}, {diff['speedup']:.2f}x speedup)"]
    categories = diff["categories"]
    if categories:
        rows = [
            [category, entry["before"], entry["after"],
             f"{entry['delta']:+d}"]
            for category, entry in sorted(
                categories.items(),
                key=lambda kv: (-abs(kv[1]["delta"]), kv[0]))]
        lines.append(render_table(
            ["category", "before", "after", "delta"], rows,
            title="category deltas (cycles, all shared tiles):"))
    lines.append(
        f"memory-stall delta: {diff['memory_stall_delta']:+d} cycle(s)")
    regressions = diff["top_regressions"][:top]
    if regressions:
        worst = ", ".join(f"{category} ({grown:+d})"
                          for category, grown in regressions)
        lines.append(f"top regressions: {worst}")
    for key, label in (("tiles_only_before", "only in A"),
                       ("tiles_only_after", "only in B")):
        if diff[key]:
            lines.append(f"tiles {label}: {', '.join(diff[key])}")
    return "\n".join(lines)


def render_timeline(document: dict, width: int = 72,
                    title: str = "") -> str:
    """Plain-text rendering of a Chrome ``trace_event`` document: one
    row per lane (trace tid), spans drawn as ``#`` runs and instants as
    ``!`` over the simulated-time axis. Counter events are skipped.

    Complements the Perfetto flow for quick terminal inspection
    (``repro timeline trace.json``)."""
    events = [e for e in document.get("traceEvents", ())
              if e.get("ph") in ("X", "i")]
    lane_names = {
        e["tid"]: e.get("args", {}).get("name", "")
        for e in document.get("traceEvents", ())
        if e.get("ph") == "M" and e.get("name") == "thread_name"}
    lines = [title] if title else []
    if not events:
        lines.append("(no span or instant events)")
        return "\n".join(lines)
    start = min(e["ts"] for e in events)
    end = max(e["ts"] + e.get("dur", 0) for e in events)
    extent = max(1, end - start)
    lanes: Dict[int, List[str]] = {}
    for event in events:
        row = lanes.setdefault(event["tid"], [" "] * width)
        lo = (event["ts"] - start) * (width - 1) // extent
        if event["ph"] == "X":
            hi = (event["ts"] + event.get("dur", 0) - start) \
                * (width - 1) // extent
            for i in range(int(lo), int(hi) + 1):
                row[i] = "#"
        else:
            row[int(lo)] = "!"
    label_width = max(
        (len(lane_names.get(tid, f"tid {tid}")) for tid in lanes),
        default=0)
    lines.append(f"{'':{label_width}}  ts {start} .. {end} "
                 f"({len(events)} events)")
    for tid in sorted(lanes):
        label = lane_names.get(tid, f"tid {tid}")
        lines.append(f"{label:>{label_width}} |{''.join(lanes[tid])}|")
    return "\n".join(lines)
