"""End-to-end simulation runner.

Ties the whole toolchain together (paper §VI: "The simulator relies on the
compiler to generate the DDG and the DTG to instrument the code and
generate memory and control flow path traces"):

1. compile the kernel (front-end);
2. build the static DDG;
3. run the Dynamic Trace Generator (functional interpretation) over a
   caller-prepared :class:`SimMemory`;
4. instantiate tiles + memory hierarchy + accelerators;
5. run the Interleaver and return :class:`SystemStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from ..frontend.compiler import compile_kernel
from ..ir.function import Function, Module
from ..memory.hierarchy import MemorySystem
from ..passes.ddg import StaticDDG, build_ddg
from ..passes.dae_slicing import mark_decoupled, slice_dae
from ..sim.accelerator.tile import AcceleratorFarm
from ..sim.comm.fabric import CommFabric
from ..sim.config import CoreConfig, MemoryHierarchyConfig
from ..sim.core.model import CoreTile
from ..sim.events import Scheduler
from ..sim.interleaver import Interleaver
from ..sim.statistics import SystemStats
from ..trace.interpreter import Interpreter
from ..trace.memory import SimMemory
from ..trace.tracefile import KernelTrace
from .systems import DAE_QUEUE_ENTRIES

Kernel = Union[str, Callable, Function]


def _infer_memory(args: Sequence) -> SimMemory:
    """Use the SimMemory backing any ArrayRef argument; fresh otherwise."""
    from ..trace.memory import ArrayRef
    for arg in args:
        if isinstance(arg, ArrayRef) and arg.memory is not None:
            return arg.memory
    return SimMemory()


@dataclass
class Prepared:
    """Compiled kernel + traces, ready to simulate on any system config."""

    function: Function
    ddg: StaticDDG
    traces: List[KernelTrace]
    memory: SimMemory


def prepare(kernel: Kernel, args: Sequence, *, num_tiles: int = 1,
            memory: Optional[SimMemory] = None) -> Prepared:
    """Compile ``kernel`` and generate SPMD traces for ``num_tiles``."""
    func = kernel if isinstance(kernel, Function) else compile_kernel(kernel)
    module = Module(func.name)
    module.add_function(func)
    mem = memory if memory is not None else _infer_memory(args)
    interp = Interpreter(module, mem)
    traces = interp.run_spmd(func.name, args, num_tiles)
    return Prepared(func, build_ddg(func), traces, mem)


def simulate(kernel: Kernel, args: Sequence, *,
             core: Optional[CoreConfig] = None,
             num_tiles: int = 1,
             hierarchy: Optional[MemoryHierarchyConfig] = None,
             accelerators: Optional[AcceleratorFarm] = None,
             memory: Optional[SimMemory] = None,
             frequency_ghz: Optional[float] = None,
             prepared: Optional[Prepared] = None,
             max_cycles: int = 2_000_000_000) -> SystemStats:
    """One-stop homogeneous simulation: ``num_tiles`` copies of ``core``
    running the SPMD kernel over a shared memory hierarchy."""
    core = core if core is not None else CoreConfig()
    if prepared is None:
        prepared = prepare(kernel, args, num_tiles=num_tiles, memory=memory)
    if len(prepared.traces) < num_tiles:
        raise ValueError(
            f"prepared traces cover {len(prepared.traces)} tile(s) but "
            f"num_tiles={num_tiles}; call prepare(..., num_tiles="
            f"{num_tiles}) first")
    freq = frequency_ghz if frequency_ghz is not None else core.frequency_ghz
    scheduler = Scheduler()
    memsys = None
    if hierarchy is not None:
        memsys = MemorySystem(hierarchy, num_tiles, scheduler, freq)
    tiles = []
    for t in range(num_tiles):
        tile = CoreTile(f"{core.name}{t}", t, core, prepared.ddg,
                        prepared.traces[t])
        tile.barrier_group_size = num_tiles
        tiles.append(tile)
    interleaver = Interleaver(tiles, memory=memsys,
                              accelerators=accelerators,
                              frequency_ghz=freq, max_cycles=max_cycles,
                              scheduler=scheduler)
    return interleaver.run()


def simulate_heterogeneous(kernel: Kernel, args: Sequence, *,
                           cores: Sequence[CoreConfig],
                           hierarchy: Optional[MemoryHierarchyConfig] = None,
                           accelerators: Optional[AcceleratorFarm] = None,
                           memory: Optional[SimMemory] = None,
                           prepared: Optional[Prepared] = None,
                           max_cycles: int = 2_000_000_000) -> SystemStats:
    """Heterogeneous SPMD simulation: one tile per entry of ``cores``,
    each with its own microarchitecture and clock (paper §II: "MosaicSim
    can simulate more heterogeneous processors by providing, and hence
    interleaving, more diverse models"; "tiles may run at different clock
    speeds, so the Interleaver queries and coordinates their events
    accordingly").

    The global clock is the fastest tile's; slower tiles get proportional
    periods (rounded to whole global cycles).
    """
    if not cores:
        raise ValueError("simulate_heterogeneous needs at least one core")
    num_tiles = len(cores)
    if prepared is None:
        prepared = prepare(kernel, args, num_tiles=num_tiles, memory=memory)
    if len(prepared.traces) < num_tiles:
        raise ValueError(
            f"prepared traces cover {len(prepared.traces)} tile(s) but "
            f"{num_tiles} cores were given")
    fastest = max(core.frequency_ghz for core in cores)
    scheduler = Scheduler()
    memsys = None
    if hierarchy is not None:
        memsys = MemorySystem(hierarchy, num_tiles, scheduler, fastest)
    tiles = []
    for index, core in enumerate(cores):
        period = max(1, round(fastest / core.frequency_ghz))
        tile = CoreTile(f"{core.name}{index}", index, core, prepared.ddg,
                        prepared.traces[index], period=period)
        tile.barrier_group_size = num_tiles
        tiles.append(tile)
    interleaver = Interleaver(tiles, memory=memsys,
                              accelerators=accelerators,
                              frequency_ghz=fastest, max_cycles=max_cycles,
                              scheduler=scheduler)
    return interleaver.run()


@dataclass
class DAEPairSpec:
    """Trace sources for one Decoupled Access/Execute pair (§VII-A)."""

    access_trace: KernelTrace
    execute_trace: KernelTrace
    access_ddg: StaticDDG
    execute_ddg: StaticDDG


def prepare_dae_sliced(kernel: Kernel, args: Sequence, *, pairs: int = 1,
                       memory: Optional[SimMemory] = None
                       ) -> List[DAEPairSpec]:
    """Run the DAE slicing pass (paper §VII-A) on ``kernel`` and prepare
    traces for ``pairs`` access/execute pairs."""
    func = kernel if isinstance(kernel, Function) else compile_kernel(kernel)
    access_fn, execute_fn = slice_dae(func)
    return prepare_dae(access_fn, execute_fn, args, pairs=pairs,
                       memory=memory)


def prepare_dae(access_kernel: Kernel, execute_kernel: Kernel,
                args: Sequence, *, pairs: int = 1,
                memory: Optional[SimMemory] = None) -> List[DAEPairSpec]:
    """Compile and trace a DAE-sliced kernel for ``pairs`` access/execute
    core pairs. Both slices receive the same arguments and partition work
    by ``tile_id()`` over ``num_tiles() = pairs``; pair ``p``'s access and
    execute instances share DAE queue ``p``."""
    access_fn = access_kernel if isinstance(access_kernel, Function) \
        else compile_kernel(access_kernel)
    execute_fn = execute_kernel if isinstance(execute_kernel, Function) \
        else compile_kernel(execute_kernel)
    module = Module("dae")
    module.add_function(access_fn)
    module.add_function(execute_fn)
    mem = memory if memory is not None else _infer_memory(args)
    interp = Interpreter(module, mem)
    access_ddg = build_ddg(access_fn)
    mark_decoupled(access_ddg)
    execute_ddg = build_ddg(execute_fn)
    specs = []
    # slices co-execute: each pair's access and execute exchange values
    # through the (functionally unbounded) DAE queues; the timing
    # simulator applies the real 512-entry back-pressure
    for p in range(pairs):
        access_trace, execute_trace = interp.run_dae_pair(
            access_fn.name, execute_fn.name, args, pair=p, pairs=pairs)
        specs.append(DAEPairSpec(access_trace, execute_trace,
                                 access_ddg, execute_ddg))
    return specs


def simulate_dae(specs: List[DAEPairSpec], *,
                 access_core: CoreConfig,
                 execute_core: CoreConfig,
                 hierarchy: Optional[MemoryHierarchyConfig] = None,
                 accelerators: Optional[AcceleratorFarm] = None,
                 queue_entries: int = DAE_QUEUE_ENTRIES,
                 frequency_ghz: Optional[float] = None,
                 max_cycles: int = 2_000_000_000) -> SystemStats:
    """Simulate P DAE pairs: tiles 0..P-1 are access cores, P..2P-1 the
    matching execute cores, communicating through bounded DAE queues."""
    pairs = len(specs)
    freq = frequency_ghz if frequency_ghz is not None \
        else access_core.frequency_ghz
    scheduler = Scheduler()
    memsys = None
    if hierarchy is not None:
        memsys = MemorySystem(hierarchy, 2 * pairs, scheduler, freq)
    fabric = CommFabric(dae_queue_capacity=queue_entries)
    tiles = []
    for p, spec in enumerate(specs):
        access = CoreTile(f"access{p}", p, access_core, spec.access_ddg,
                          spec.access_trace)
        access.dae_queue_names = {"load": f"load{p}", "store": f"store{p}"}
        access.barrier_group = "dae-access"
        access.barrier_group_size = pairs
        tiles.append(access)
    for p, spec in enumerate(specs):
        execute = CoreTile(f"execute{p}", pairs + p, execute_core,
                           spec.execute_ddg, spec.execute_trace)
        execute.dae_queue_names = {"load": f"load{p}", "store": f"store{p}"}
        execute.barrier_group = "dae-execute"
        execute.barrier_group_size = pairs
        tiles.append(execute)
    interleaver = Interleaver(tiles, memory=memsys, fabric=fabric,
                              accelerators=accelerators, frequency_ghz=freq,
                              max_cycles=max_cycles, scheduler=scheduler)
    return interleaver.run()
