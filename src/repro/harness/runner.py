"""End-to-end simulation runner.

Ties the whole toolchain together (paper §VI: "The simulator relies on the
compiler to generate the DDG and the DTG to instrument the code and
generate memory and control flow path traces"):

1. compile the kernel (front-end);
2. build the static DDG;
3. run the Dynamic Trace Generator (functional interpretation) over a
   caller-prepared :class:`SimMemory`;
4. instantiate tiles + memory hierarchy + accelerators;
5. run the Interleaver and return :class:`SystemStats`.
"""

from __future__ import annotations

import contextlib
import signal as _signal
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..frontend.compiler import compile_kernel
from ..ir.function import Function, Module
from ..memory.hierarchy import MemorySystem
from ..passes.ddg import StaticDDG, build_ddg
from ..passes.dae_slicing import mark_decoupled, slice_dae
from ..resilience.faults import FaultInjector, FaultPlan, FaultRecord
from ..sim.accelerator.tile import AcceleratorFarm
from ..sim.comm.fabric import CommFabric
from ..sim.config import ConfigError, CoreConfig, MemoryHierarchyConfig
from ..sim.core.model import CoreTile
from ..sim.errors import (
    AcceleratorFaultError, CycleBudgetExceeded, DeadlockError,
    SimulationError, SimulationInterrupted, WatchdogTimeout,
)
from ..sim.events import Scheduler
from ..sim.interleaver import Interleaver
from ..sim.statistics import SystemStats
from ..telemetry.profiler import ProfileReport
from ..trace.interpreter import Interpreter
from ..trace.memory import SimMemory
from ..trace.tracefile import KernelTrace
from .prepcache import PrepareCache, prepare_key
from .status import STATUS
from .systems import DAE_QUEUE_ENTRIES

Kernel = Union[str, Callable, Function]

DEFAULT_MAX_CYCLES = 2_000_000_000


def _infer_memory(args: Sequence) -> SimMemory:
    """Use the SimMemory backing any ArrayRef argument; fresh otherwise."""
    from ..trace.memory import ArrayRef
    for arg in args:
        if isinstance(arg, ArrayRef) and arg.memory is not None:
            return arg.memory
    return SimMemory()


@dataclass
class Prepared:
    """Compiled kernel + traces, ready to simulate on any system config."""

    function: Function
    ddg: StaticDDG
    traces: List[KernelTrace]
    memory: SimMemory
    #: prepare-cache provenance: the content address this artifact lives
    #: under, whether this instance was replayed from the cache, and the
    #: stored payload's SHA-256 (None/False when prepared uncached)
    cache_key: Optional[str] = None
    cache_hit: bool = False
    artifact_digest: Optional[str] = None


def _overlay_memory(live: SimMemory, cached: SimMemory) -> bool:
    """Copy the cached post-interpretation segment data into the live
    SimMemory (matched by name/base/type/length), so a cache hit leaves
    the caller's memory exactly as a fresh functional run would —
    ``workload.verify()`` reads it. False when the layouts disagree
    (a key collision or stale entry; the caller recompiles)."""
    targets = {}
    for segment in live.segments:
        targets[(segment.name, segment.base, str(segment.element_type),
                 len(segment.data))] = segment
    if len(targets) != len(cached.segments):
        return False
    for segment in cached.segments:
        target = targets.pop(
            (segment.name, segment.base, str(segment.element_type),
             len(segment.data)), None)
        if target is None:
            return False
        target.data[:] = segment.data
    return True


def prepare(kernel: Kernel, args: Sequence, *, num_tiles: int = 1,
            memory: Optional[SimMemory] = None,
            injector: Optional[FaultInjector] = None,
            cache: Optional[PrepareCache] = None) -> Prepared:
    """Compile ``kernel`` and generate SPMD traces for ``num_tiles``.

    With ``injector``, functional loads during trace generation may
    return bit-flipped values (deterministic under the injector's seed).

    With ``cache`` (a :class:`~repro.harness.prepcache.PrepareCache`),
    the compiled function, DDG, traces and functional memory image are
    replayed from disk when an entry matches the content-addressed key
    (kernel IR + argument spec + initial memory image + ``num_tiles`` +
    toolchain schema versions), and stored after a fresh run otherwise.
    An attached ``injector`` always bypasses the cache: it corrupts
    functional loads and advances RNG/log state during interpretation,
    so replaying artifacts would diverge from an injected run.
    """
    func = kernel if isinstance(kernel, Function) else compile_kernel(kernel)
    mem = memory if memory is not None else _infer_memory(args)
    key = None
    if cache is not None:
        if injector is not None:
            cache.bypasses += 1
            STATUS.verbose("prepare cache: bypassed (fault injector "
                           "attached)")
        else:
            # keyed over the INITIAL memory image; interpretation below
            # mutates mem in place
            key = prepare_key(func, args, num_tiles, mem)
            if key is not None:
                hit = cache.load(key)
                if hit is not None:
                    stored, digest = hit
                    if (isinstance(stored, Prepared)
                            and len(stored.traces) == num_tiles
                            and _overlay_memory(mem, stored.memory)):
                        STATUS.info(
                            f"prepare cache: hit {key[:12]} "
                            f"({func.name}, {num_tiles} tile(s))")
                        return Prepared(stored.function, stored.ddg,
                                        stored.traces, mem,
                                        cache_key=key, cache_hit=True,
                                        artifact_digest=digest)
                    cache._discard(key, "artifact does not match the "
                                        "live workload")
    module = Module(func.name)
    module.add_function(func)
    interp = Interpreter(module, mem)
    if injector is not None:
        mem.injector = injector
    try:
        traces = interp.run_spmd(func.name, args, num_tiles)
    finally:
        if injector is not None:
            mem.injector = None
    prepared = Prepared(func, build_ddg(func), traces, mem)
    if cache is not None and key is not None:
        # stored before the provenance fields are set, so the payload
        # digest is a pure function of the artifact content
        digest = cache.store(key, prepared, meta={
            "kernel": func.name, "num_tiles": num_tiles,
            "traces": len(traces)})
        prepared.cache_key = key
        prepared.artifact_digest = digest
        if digest is not None:
            STATUS.info(f"prepare cache: store {key[:12]} "
                        f"({func.name}, {num_tiles} tile(s))")
    return prepared


def _check_trace_count(prepared: Prepared, num_tiles: int, detail: str,
                       strict: bool = False) -> None:
    """Symmetric trace-count validation: too few traces always raises
    (tiles would have nothing to run); extra traces warn — they are
    silently dropped otherwise, usually a sign the caller prepared for a
    different tile count — or raise under ``strict``."""
    count = len(prepared.traces)
    if count < num_tiles:
        raise ValueError(
            f"prepared traces cover {count} tile(s) but {detail}")
    if count > num_tiles:
        message = (f"prepared traces cover {count} tile(s) but {detail}; "
                   f"the extra {count - num_tiles} trace(s) are ignored")
        if strict:
            raise ValueError(message)
        STATUS.warn(message)


def build_system(kernel: Kernel, args: Sequence, *,
                 core: Optional[CoreConfig] = None,
                 num_tiles: int = 1,
                 hierarchy: Optional[MemoryHierarchyConfig] = None,
                 accelerators: Optional[AcceleratorFarm] = None,
                 memory: Optional[SimMemory] = None,
                 frequency_ghz: Optional[float] = None,
                 prepared: Optional[Prepared] = None,
                 max_cycles: int = DEFAULT_MAX_CYCLES,
                 wall_clock_limit: Optional[float] = None,
                 injector: Optional[FaultInjector] = None,
                 prep_cache: Optional[PrepareCache] = None,
                 strict_traces: bool = False,
                 tracer=None, metrics=None, profiler=None,
                 attribution=None, checkpoint=None,
                 emitter=None, memstat=None) -> Interleaver:
    """Build (without running) the homogeneous system :func:`simulate`
    would run: ``num_tiles`` copies of ``core`` over a shared hierarchy.

    The build/run split is what checkpoint tests and the graceful-
    interrupt path hang off: the returned Interleaver can be armed for
    signals, run under a cycle budget, snapshotted, and resumed.
    """
    core = core if core is not None else CoreConfig()
    core.validate()
    if prepared is None:
        prepared = prepare(kernel, args, num_tiles=num_tiles, memory=memory,
                           injector=injector, cache=prep_cache)
    _check_trace_count(prepared, num_tiles,
                       f"num_tiles={num_tiles}; call prepare(..., "
                       f"num_tiles={num_tiles}) first",
                       strict=strict_traces)
    freq = frequency_ghz if frequency_ghz is not None else core.frequency_ghz
    scheduler = Scheduler()
    memsys = None
    if hierarchy is not None:
        memsys = MemorySystem(hierarchy, num_tiles, scheduler, freq,
                              injector=injector)
    fabric = CommFabric(injector=injector) if injector is not None else None
    if accelerators is not None and injector is not None:
        accelerators.injector = injector
    tiles = []
    for t in range(num_tiles):
        tile = CoreTile(f"{core.name}{t}", t, core, prepared.ddg,
                        prepared.traces[t])
        tile.barrier_group_size = num_tiles
        tiles.append(tile)
    return Interleaver(tiles, memory=memsys, fabric=fabric,
                       accelerators=accelerators,
                       frequency_ghz=freq, max_cycles=max_cycles,
                       scheduler=scheduler,
                       wall_clock_limit=wall_clock_limit,
                       tracer=tracer, metrics=metrics,
                       profiler=profiler, attribution=attribution,
                       checkpoint=checkpoint, emitter=emitter,
                       memstat=memstat)


def simulate(kernel: Kernel, args: Sequence, *,
             core: Optional[CoreConfig] = None,
             num_tiles: int = 1,
             hierarchy: Optional[MemoryHierarchyConfig] = None,
             accelerators: Optional[AcceleratorFarm] = None,
             memory: Optional[SimMemory] = None,
             frequency_ghz: Optional[float] = None,
             prepared: Optional[Prepared] = None,
             max_cycles: int = DEFAULT_MAX_CYCLES,
             wall_clock_limit: Optional[float] = None,
             injector: Optional[FaultInjector] = None,
             prep_cache: Optional[PrepareCache] = None,
             strict_traces: bool = False,
             tracer=None, metrics=None, profiler=None,
             attribution=None, checkpoint=None,
             emitter=None, memstat=None) -> SystemStats:
    """One-stop homogeneous simulation: ``num_tiles`` copies of ``core``
    running the SPMD kernel over a shared memory hierarchy.

    ``injector`` wires timing-level fault injection (fabric, DRAM,
    accelerators) into the run; ``wall_clock_limit`` arms the watchdog.
    ``prep_cache`` replays compiled kernels + traces from the
    content-addressed prepare cache (see ``docs/performance.md``).
    ``tracer``/``metrics``/``profiler``/``attribution`` attach the
    telemetry layer (see ``docs/observability.md``); ``checkpoint`` (a
    :class:`~repro.checkpoint.CheckpointSink`) arms periodic autosave
    (see ``docs/resilience.md``). All default to off.
    """
    return build_system(
        kernel, args, core=core, num_tiles=num_tiles, hierarchy=hierarchy,
        accelerators=accelerators, memory=memory,
        frequency_ghz=frequency_ghz, prepared=prepared,
        max_cycles=max_cycles, wall_clock_limit=wall_clock_limit,
        injector=injector, prep_cache=prep_cache,
        strict_traces=strict_traces, tracer=tracer, metrics=metrics,
        profiler=profiler, attribution=attribution,
        checkpoint=checkpoint, emitter=emitter,
        memstat=memstat).run()


def build_heterogeneous(kernel: Kernel, args: Sequence, *,
                        cores: Sequence[CoreConfig],
                        hierarchy: Optional[MemoryHierarchyConfig] = None,
                        accelerators: Optional[AcceleratorFarm] = None,
                        memory: Optional[SimMemory] = None,
                        prepared: Optional[Prepared] = None,
                        max_cycles: int = DEFAULT_MAX_CYCLES,
                        wall_clock_limit: Optional[float] = None,
                        injector: Optional[FaultInjector] = None,
                        prep_cache: Optional[PrepareCache] = None,
                        strict_traces: bool = False,
                        tracer=None, metrics=None, profiler=None,
                        attribution=None, checkpoint=None,
                        emitter=None, memstat=None) -> Interleaver:
    """Build (without running) the heterogeneous system
    :func:`simulate_heterogeneous` would run."""
    if not cores:
        raise ValueError("simulate_heterogeneous needs at least one core")
    for c in cores:
        c.validate()
    num_tiles = len(cores)
    if prepared is None:
        prepared = prepare(kernel, args, num_tiles=num_tiles, memory=memory,
                           injector=injector, cache=prep_cache)
    _check_trace_count(prepared, num_tiles,
                       f"{num_tiles} cores were given",
                       strict=strict_traces)
    fastest = max(core.frequency_ghz for core in cores)
    scheduler = Scheduler()
    memsys = None
    if hierarchy is not None:
        memsys = MemorySystem(hierarchy, num_tiles, scheduler, fastest,
                              injector=injector)
    fabric = CommFabric(injector=injector) if injector is not None else None
    if accelerators is not None and injector is not None:
        accelerators.injector = injector
    tiles = []
    for index, core in enumerate(cores):
        period = max(1, round(fastest / core.frequency_ghz))
        tile = CoreTile(f"{core.name}{index}", index, core, prepared.ddg,
                        prepared.traces[index], period=period)
        tile.barrier_group_size = num_tiles
        tiles.append(tile)
    return Interleaver(tiles, memory=memsys, fabric=fabric,
                       accelerators=accelerators,
                       frequency_ghz=fastest, max_cycles=max_cycles,
                       scheduler=scheduler,
                       wall_clock_limit=wall_clock_limit,
                       tracer=tracer, metrics=metrics,
                       profiler=profiler, attribution=attribution,
                       checkpoint=checkpoint, emitter=emitter,
                       memstat=memstat)


def simulate_heterogeneous(kernel: Kernel, args: Sequence, *,
                           cores: Sequence[CoreConfig],
                           hierarchy: Optional[MemoryHierarchyConfig] = None,
                           accelerators: Optional[AcceleratorFarm] = None,
                           memory: Optional[SimMemory] = None,
                           prepared: Optional[Prepared] = None,
                           max_cycles: int = DEFAULT_MAX_CYCLES,
                           wall_clock_limit: Optional[float] = None,
                           injector: Optional[FaultInjector] = None,
                           prep_cache: Optional[PrepareCache] = None,
                           strict_traces: bool = False,
                           tracer=None, metrics=None, profiler=None,
                           attribution=None, checkpoint=None,
                           emitter=None, memstat=None) -> SystemStats:
    """Heterogeneous SPMD simulation: one tile per entry of ``cores``,
    each with its own microarchitecture and clock (paper §II: "MosaicSim
    can simulate more heterogeneous processors by providing, and hence
    interleaving, more diverse models"; "tiles may run at different clock
    speeds, so the Interleaver queries and coordinates their events
    accordingly").

    The global clock is the fastest tile's; slower tiles get proportional
    periods (rounded to whole global cycles).
    """
    return build_heterogeneous(
        kernel, args, cores=cores, hierarchy=hierarchy,
        accelerators=accelerators, memory=memory, prepared=prepared,
        max_cycles=max_cycles, wall_clock_limit=wall_clock_limit,
        injector=injector, prep_cache=prep_cache,
        strict_traces=strict_traces, tracer=tracer, metrics=metrics,
        profiler=profiler, attribution=attribution,
        checkpoint=checkpoint, emitter=emitter,
        memstat=memstat).run()


@dataclass
class DAEPairSpec:
    """Trace sources for one Decoupled Access/Execute pair (§VII-A)."""

    access_trace: KernelTrace
    execute_trace: KernelTrace
    access_ddg: StaticDDG
    execute_ddg: StaticDDG


def prepare_dae_sliced(kernel: Kernel, args: Sequence, *, pairs: int = 1,
                       memory: Optional[SimMemory] = None
                       ) -> List[DAEPairSpec]:
    """Run the DAE slicing pass (paper §VII-A) on ``kernel`` and prepare
    traces for ``pairs`` access/execute pairs."""
    func = kernel if isinstance(kernel, Function) else compile_kernel(kernel)
    access_fn, execute_fn = slice_dae(func)
    return prepare_dae(access_fn, execute_fn, args, pairs=pairs,
                       memory=memory)


def prepare_dae(access_kernel: Kernel, execute_kernel: Kernel,
                args: Sequence, *, pairs: int = 1,
                memory: Optional[SimMemory] = None) -> List[DAEPairSpec]:
    """Compile and trace a DAE-sliced kernel for ``pairs`` access/execute
    core pairs. Both slices receive the same arguments and partition work
    by ``tile_id()`` over ``num_tiles() = pairs``; pair ``p``'s access and
    execute instances share DAE queue ``p``."""
    access_fn = access_kernel if isinstance(access_kernel, Function) \
        else compile_kernel(access_kernel)
    execute_fn = execute_kernel if isinstance(execute_kernel, Function) \
        else compile_kernel(execute_kernel)
    module = Module("dae")
    module.add_function(access_fn)
    module.add_function(execute_fn)
    mem = memory if memory is not None else _infer_memory(args)
    interp = Interpreter(module, mem)
    access_ddg = build_ddg(access_fn)
    mark_decoupled(access_ddg)
    execute_ddg = build_ddg(execute_fn)
    specs = []
    # slices co-execute: each pair's access and execute exchange values
    # through the (functionally unbounded) DAE queues; the timing
    # simulator applies the real 512-entry back-pressure
    for p in range(pairs):
        access_trace, execute_trace = interp.run_dae_pair(
            access_fn.name, execute_fn.name, args, pair=p, pairs=pairs)
        specs.append(DAEPairSpec(access_trace, execute_trace,
                                 access_ddg, execute_ddg))
    return specs


def build_dae(specs: List[DAEPairSpec], *,
              access_core: CoreConfig,
              execute_core: CoreConfig,
              hierarchy: Optional[MemoryHierarchyConfig] = None,
              accelerators: Optional[AcceleratorFarm] = None,
              queue_entries: int = DAE_QUEUE_ENTRIES,
              frequency_ghz: Optional[float] = None,
              max_cycles: int = DEFAULT_MAX_CYCLES,
              wall_clock_limit: Optional[float] = None,
              injector: Optional[FaultInjector] = None,
              tracer=None, metrics=None, profiler=None,
              attribution=None, checkpoint=None,
              emitter=None, memstat=None) -> Interleaver:
    """Build (without running) the DAE system :func:`simulate_dae`
    would run."""
    pairs = len(specs)
    access_core.validate()
    execute_core.validate()
    freq = frequency_ghz if frequency_ghz is not None \
        else access_core.frequency_ghz
    scheduler = Scheduler()
    memsys = None
    if hierarchy is not None:
        memsys = MemorySystem(hierarchy, 2 * pairs, scheduler, freq,
                              injector=injector)
    fabric = CommFabric(dae_queue_capacity=queue_entries, injector=injector)
    if accelerators is not None and injector is not None:
        accelerators.injector = injector
    tiles = []
    for p, spec in enumerate(specs):
        access = CoreTile(f"access{p}", p, access_core, spec.access_ddg,
                          spec.access_trace)
        access.dae_queue_names = {"load": f"load{p}", "store": f"store{p}"}
        access.barrier_group = "dae-access"
        access.barrier_group_size = pairs
        tiles.append(access)
    for p, spec in enumerate(specs):
        execute = CoreTile(f"execute{p}", pairs + p, execute_core,
                           spec.execute_ddg, spec.execute_trace)
        execute.dae_queue_names = {"load": f"load{p}", "store": f"store{p}"}
        execute.barrier_group = "dae-execute"
        execute.barrier_group_size = pairs
        tiles.append(execute)
    return Interleaver(tiles, memory=memsys, fabric=fabric,
                       accelerators=accelerators, frequency_ghz=freq,
                       max_cycles=max_cycles, scheduler=scheduler,
                       wall_clock_limit=wall_clock_limit,
                       tracer=tracer, metrics=metrics,
                       profiler=profiler, attribution=attribution,
                       checkpoint=checkpoint, emitter=emitter,
                       memstat=memstat)


def simulate_dae(specs: List[DAEPairSpec], *,
                 access_core: CoreConfig,
                 execute_core: CoreConfig,
                 hierarchy: Optional[MemoryHierarchyConfig] = None,
                 accelerators: Optional[AcceleratorFarm] = None,
                 queue_entries: int = DAE_QUEUE_ENTRIES,
                 frequency_ghz: Optional[float] = None,
                 max_cycles: int = DEFAULT_MAX_CYCLES,
                 wall_clock_limit: Optional[float] = None,
                 injector: Optional[FaultInjector] = None,
                 tracer=None, metrics=None, profiler=None,
                 attribution=None, checkpoint=None,
                 emitter=None, memstat=None) -> SystemStats:
    """Simulate P DAE pairs: tiles 0..P-1 are access cores, P..2P-1 the
    matching execute cores, communicating through bounded DAE queues."""
    return build_dae(
        specs, access_core=access_core, execute_core=execute_core,
        hierarchy=hierarchy, accelerators=accelerators,
        queue_entries=queue_entries, frequency_ghz=frequency_ghz,
        max_cycles=max_cycles, wall_clock_limit=wall_clock_limit,
        injector=injector, tracer=tracer, metrics=metrics,
        profiler=profiler, attribution=attribution,
        checkpoint=checkpoint, emitter=emitter,
        memstat=memstat).run()


# -- graceful interrupts (robustness layer) --------------------------------------

@contextlib.contextmanager
def graceful_interrupts(interleaver: Interleaver,
                        signals: Sequence[int] = (_signal.SIGINT,
                                                  _signal.SIGTERM)):
    """Convert SIGINT/SIGTERM during ``interleaver.run()`` into a clean
    :class:`SimulationInterrupted` carrying a final checkpoint (when a
    sink is attached) and partial stats, instead of an arbitrary-point
    KeyboardInterrupt that can tear the run mid-event.

    The handler itself only notes the signal number; the run loop acts
    on it at the next snapshot consistency point. A second signal of the
    same kind falls back to Python's default behavior only after the
    handlers are restored (on exit from the ``with`` block). No-op when
    not running in the main thread (signal handlers cannot be installed
    there).
    """
    interleaver.arm_interrupts()

    def _note(signum, frame):
        interleaver.request_interrupt(signum)

    previous = {}
    try:
        for signum in signals:
            previous[signum] = _signal.signal(signum, _note)
    except ValueError:  # not the main thread: run unprotected
        pass
    try:
        yield interleaver
    finally:
        for signum, handler in previous.items():
            _signal.signal(signum, handler)


# -- fault injection + supervised runs (robustness layer) ------------------------

@dataclass
class FaultedRun:
    """Result of :func:`run_with_faults`: stats plus the fault log."""

    stats: SystemStats
    fault_log: Tuple[FaultRecord, ...]
    injector: FaultInjector

    @property
    def fault_summary(self):
        return self.injector.summary()


def run_with_faults(kernel: Kernel, args: Sequence, *,
                    plan: FaultPlan,
                    core: Optional[CoreConfig] = None,
                    num_tiles: int = 1,
                    hierarchy: Optional[MemoryHierarchyConfig] = None,
                    accelerators: Optional[AcceleratorFarm] = None,
                    memory: Optional[SimMemory] = None,
                    max_cycles: int = DEFAULT_MAX_CYCLES,
                    wall_clock_limit: Optional[float] = None) -> FaultedRun:
    """Simulate under a deterministic :class:`FaultPlan`.

    The same ``plan`` (same seed) over the same workload reproduces the
    exact same faults, and therefore bit-identical :class:`SystemStats`
    and fault logs — the property the resilience tests assert.
    """
    plan.validate()
    injector = FaultInjector(plan)
    stats = simulate(kernel, args, core=core, num_tiles=num_tiles,
                     hierarchy=hierarchy, accelerators=accelerators,
                     memory=memory, max_cycles=max_cycles,
                     wall_clock_limit=wall_clock_limit, injector=injector)
    return FaultedRun(stats, tuple(injector.log), injector)


@dataclass
class RunOutcome:
    """Per-run record kept by the supervisor (and by sweeps): what
    happened, how many attempts it took, and how long it ran."""

    status: str                      # ok | deadlock | timeout | fault |
                                     # error | config-error | interrupted
    stats: Optional[SystemStats] = None
    error: str = ""
    attempts: int = 1
    fault_log: Tuple[FaultRecord, ...] = ()
    wall_seconds: float = 0.0
    #: simulator self-profile (set when the run carried a SelfProfiler)
    profile: Optional[ProfileReport] = None
    #: checkpoint flushed before the failure, resumable via
    #: repro.checkpoint.resume_simulation (set when a sink was attached
    #: and the run died at a snapshottable point)
    checkpoint_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def classify_failure(exc: BaseException) -> str:
    """Map a simulation exception to a coarse outcome label."""
    if isinstance(exc, SimulationInterrupted):
        return "interrupted"
    if isinstance(exc, DeadlockError):
        return "deadlock"
    if isinstance(exc, (CycleBudgetExceeded, WatchdogTimeout)):
        return "timeout"
    if isinstance(exc, AcceleratorFaultError):
        return "fault"
    if isinstance(exc, ConfigError):
        return "config-error"
    if isinstance(exc, SimulationError):
        return "error"
    return "error"


def _is_transient(exc: BaseException) -> bool:
    """Only transient faults are worth retrying: deadlocks and cycle
    budget blowouts are deterministic under a fixed plan, but a reseeded
    plan changes the fault pattern, so fault-class failures may clear."""
    if isinstance(exc, AcceleratorFaultError):
        return exc.transient
    return isinstance(exc, (DeadlockError, CycleBudgetExceeded,
                            WatchdogTimeout))


def run_supervised(kernel: Kernel, args: Sequence, *,
                   plan: Optional[FaultPlan] = None,
                   core: Optional[CoreConfig] = None,
                   num_tiles: int = 1,
                   hierarchy: Optional[MemoryHierarchyConfig] = None,
                   accelerators: Optional[AcceleratorFarm] = None,
                   memory: Optional[SimMemory] = None,
                   max_cycles: int = DEFAULT_MAX_CYCLES,
                   wall_clock_limit: Optional[float] = None,
                   retries: int = 0,
                   backoff_seconds: float = 0.0,
                   fresh: Optional[Callable[[], tuple]] = None,
                   prepared: Optional[Prepared] = None,
                   prep_cache: Optional[PrepareCache] = None,
                   tracer=None, metrics=None, profiler=None,
                   attribution=None, checkpoint=None,
                   emitter=None, memstat=None) -> RunOutcome:
    """Run a simulation under supervision: cycle budget, wall-clock
    watchdog, and retry-with-backoff for transient faults.

    Never raises for simulation failures — returns a :class:`RunOutcome`
    whose ``status`` classifies what happened, so sweeps degrade
    gracefully instead of dying on the first bad configuration.

    Retries re-run with ``plan.reseeded(attempt)`` so a different (but
    still deterministic) fault pattern is drawn each attempt. When the
    workload mutates its own memory (most kernels do), pass ``fresh``: a
    zero-argument callable returning a new ``(kernel, args, memory)``
    triple per attempt, so retries start from pristine state.

    ``prepared`` reuses an existing artifact for the first attempt
    (dropped when a fault injector is active or ``fresh`` rebuilt the
    workload); ``prep_cache`` makes any re-prepare a cache replay.

    With ``checkpoint`` (a CheckpointSink), the run autosaves and — the
    supervisor integration — flushes a final snapshot *before* the cycle
    budget or watchdog failure propagates, so ``RunOutcome.
    checkpoint_path`` points at a resumable snapshot of the work already
    done instead of throwing those cycles away.
    """
    attempts = 0
    start = time.monotonic()
    last_exc: Optional[BaseException] = None
    fault_log: Tuple[FaultRecord, ...] = ()
    while attempts <= retries:
        attempt_plan = plan.reseeded(attempts) if plan is not None else None
        injector = FaultInjector(attempt_plan) \
            if attempt_plan is not None and attempt_plan.enabled else None
        k, a, m = kernel, args, memory
        attempt_prepared = prepared
        if fresh is not None and attempts > 0:
            k, a, m = fresh()
            # the caller's Prepared is bound to the original memory;
            # retries on pristine state must re-prepare (the cache makes
            # that cheap)
            attempt_prepared = None
        if injector is not None:
            # an injector corrupts functional loads during trace
            # generation; a Prepared made without it would skip that
            attempt_prepared = None
        attempts += 1
        try:
            stats = simulate(k, a, core=core, num_tiles=num_tiles,
                             hierarchy=hierarchy, accelerators=accelerators,
                             memory=m, max_cycles=max_cycles,
                             wall_clock_limit=wall_clock_limit,
                             prepared=attempt_prepared,
                             prep_cache=prep_cache,
                             injector=injector, tracer=tracer,
                             metrics=metrics, profiler=profiler,
                             attribution=attribution, checkpoint=checkpoint,
                             emitter=emitter, memstat=memstat)
            return RunOutcome(
                "ok", stats=stats, attempts=attempts,
                fault_log=tuple(injector.log) if injector else (),
                wall_seconds=time.monotonic() - start,
                profile=profiler.report if profiler is not None else None)
        except (SimulationError, ConfigError) as exc:
            last_exc = exc
            fault_log = tuple(injector.log) if injector else ()
            if attempts <= retries and _is_transient(exc):
                if backoff_seconds > 0:
                    time.sleep(backoff_seconds * (2 ** (attempts - 1)))
                continue
            break
    partial = getattr(last_exc, "partial_stats", None)
    profile = None
    if profiler is not None:
        # deadlock/budget failures propagate before the Interleaver
        # finalizes the profile; the phase buckets still tell where the
        # failed run's wall-clock went, so finalize them here
        profile = profiler.report
        if profile is None:
            profile = profiler.finish(
                partial.cycles if partial is not None else 0,
                partial.instructions if partial is not None else 0)
    return RunOutcome(
        classify_failure(last_exc), error=str(last_exc), attempts=attempts,
        stats=partial, fault_log=fault_log,
        wall_seconds=time.monotonic() - start, profile=profile,
        checkpoint_path=getattr(last_exc, "checkpoint_path", None))
