"""``repro.harness`` — system presets, experiment runners, reference
machine, reporting, and measurement utilities."""

from .reference import (
    accuracy_factor, fold_for_x86, reference_stats, x86_reference_core,
    x86_reference_hierarchy,
)
from .reporting import (
    geomean, render_attribution_report, render_bars,
    render_campaign_report, render_memory_diff, render_memstat_report,
    render_report_diff, render_table, render_timeline,
)
from .prepcache import (
    DEFAULT_MAX_BYTES, PREPCACHE_SCHEMA_VERSION, PrepareCache,
    default_cache_root, prepare_key,
)
from .runner import (
    DAEPairSpec, DEFAULT_MAX_CYCLES, FaultedRun, Prepared, RunOutcome,
    build_dae, build_heterogeneous, build_system, classify_failure,
    graceful_interrupts, prepare, prepare_dae, prepare_dae_sliced,
    run_supervised, run_with_faults, simulate, simulate_dae,
    simulate_heterogeneous,
)
from .status import (
    NORMAL, QUIET, STATUS, StatusLogger, VERBOSE, set_status_level,
)
from .sweeps import (
    SweepJournal, SweepPoint, SweepResult, sweep_core, sweep_hierarchy,
    sweep_runs,
)
from .watch import (
    SweepLiveStatus, estimate_total_cycles, eta_seconds, live_path_for,
    load_live, render_watch, watch_loop,
)
from .simspeed import (
    BENCH_SCHEMA_VERSION, PAPER_MIPS, SpeedReport,
    measure_prepare_cache, measure_simulation_speed,
    measure_sweep_scaling, trace_footprint_bytes, write_bench_json,
)
from .systems import (
    DAE_QUEUE_ENTRIES, DAE_QUEUE_LATENCY, INO_AREA_MM2, OOO_AREA_MM2,
    dae_hierarchy, inorder_core, ooo_core, xeon_core, xeon_hierarchy,
)
from .trends import microprocessor_trends, render_figure1, stagnation_year

__all__ = [
    "accuracy_factor", "fold_for_x86", "reference_stats",
    "x86_reference_core", "x86_reference_hierarchy",
    "geomean", "render_attribution_report", "render_bars",
    "render_campaign_report", "render_memory_diff",
    "render_memstat_report", "render_report_diff", "render_table",
    "render_timeline",
    "DEFAULT_MAX_BYTES", "PREPCACHE_SCHEMA_VERSION", "PrepareCache",
    "default_cache_root", "prepare_key",
    "DAEPairSpec", "DEFAULT_MAX_CYCLES", "FaultedRun", "Prepared",
    "RunOutcome", "build_dae", "build_heterogeneous", "build_system",
    "classify_failure", "graceful_interrupts", "prepare", "prepare_dae",
    "prepare_dae_sliced", "run_supervised", "run_with_faults", "simulate",
    "simulate_dae", "simulate_heterogeneous",
    "NORMAL", "QUIET", "STATUS", "StatusLogger", "VERBOSE",
    "set_status_level",
    "SweepJournal", "SweepPoint", "SweepResult", "sweep_core",
    "sweep_hierarchy", "sweep_runs",
    "SweepLiveStatus", "estimate_total_cycles", "eta_seconds",
    "live_path_for", "load_live", "render_watch", "watch_loop",
    "BENCH_SCHEMA_VERSION", "PAPER_MIPS", "SpeedReport",
    "measure_prepare_cache", "measure_simulation_speed",
    "measure_sweep_scaling", "trace_footprint_bytes", "write_bench_json",
    "DAE_QUEUE_ENTRIES", "DAE_QUEUE_LATENCY", "INO_AREA_MM2",
    "OOO_AREA_MM2", "dae_hierarchy", "inorder_core", "ooo_core",
    "xeon_core", "xeon_hierarchy",
    "microprocessor_trends", "render_figure1", "stagnation_year",
]
