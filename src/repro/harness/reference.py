"""The "x86 reference machine" — stand-in for real-hardware measurements.

The paper validates MosaicSim against a Xeon E5-2667 v3 measured with
VTune (Figures 5–9). With no hardware available, the reproduction's ground
truth is a *differently calibrated* machine model built from the paper's
own observation about ISA differences (§VI-A): x86 folds address
arithmetic into memory operations ("LLVM IR requires two instructions:
``load`` and ``getelementptr``, while the x86 ISA can perform this with
one: ``MOV``") and implicit width conversions into consuming instructions.

The reference machine therefore replays the *same* traces through a core
model whose DDG has GEPs and casts folded away, with x86-flavored
latencies and a more aggressive hardware prefetcher. Accuracy factors
(simulated cycles / reference cycles) then *emerge* from per-benchmark
instruction mix — gep/cast-dense kernels make vanilla MosaicSim
pessimistic (factor > 1), long-latency-FP kernels where calibrations
differ push the other way — reproducing the shape of Figure 5: scatter
around 1.0 with a geomean near 1.1.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..ir.instructions import OpClass, Opcode
from ..passes.ddg import StaticDDG
from ..sim.config import (
    CoreConfig, MemoryHierarchyConfig, PrefetcherConfig,
)
from ..sim.statistics import SystemStats
from .runner import Prepared, simulate
from .systems import xeon_core, xeon_hierarchy

#: opcodes x86 folds into the consuming instruction
_FOLDED_OPCODES = {
    Opcode.GEP, Opcode.SEXT, Opcode.ZEXT, Opcode.TRUNC, Opcode.BITCAST,
    Opcode.FPEXT, Opcode.FPTRUNC,
}


def fold_for_x86(ddg: StaticDDG) -> StaticDDG:
    """Return a copy of ``ddg`` with address arithmetic and width casts
    marked folded (free), modeling x86 addressing modes and implicit
    conversions."""
    nodes = [
        replace(node, folded=True) if node.opcode in _FOLDED_OPCODES
        else replace(node)
        for node in ddg.nodes
    ]
    return StaticDDG(ddg.function, nodes, ddg.blocks)


def x86_reference_core(name: str = "x86ref") -> CoreConfig:
    """Xeon-flavored calibration: slightly different FP latencies and a
    shorter effective FP-long latency (hardware sqrt/transcendental
    sequences)."""
    core = xeon_core(name)
    latencies = dict(core.latencies)
    latencies[OpClass.FPALU] = 4
    latencies[OpClass.FPMUL] = 5
    latencies[OpClass.FPDIV] = 14
    latencies[OpClass.IMUL] = 3
    return core.scaled(latencies=latencies, fp_long_latency=24,
                       lsq_size=72, rob_size=192)


def x86_reference_hierarchy() -> MemoryHierarchyConfig:
    """Table I hierarchy with the Xeon's more aggressive streamer."""
    hierarchy = xeon_hierarchy()
    hierarchy.prefetcher = PrefetcherConfig(enabled=True, degree=8,
                                            trigger=2, distance=4)
    return hierarchy


def reference_stats(prepared: Prepared, *, num_tiles: int = 1,
                    core: Optional[CoreConfig] = None,
                    hierarchy: Optional[MemoryHierarchyConfig] = None,
                    max_cycles: int = 2_000_000_000) -> SystemStats:
    """Replay prepared traces through the x86 reference machine."""
    core = core if core is not None else x86_reference_core()
    hierarchy = hierarchy if hierarchy is not None \
        else x86_reference_hierarchy()
    folded = Prepared(prepared.function, fold_for_x86(prepared.ddg),
                      prepared.traces, prepared.memory)
    return simulate(prepared.function, [], core=core, num_tiles=num_tiles,
                    hierarchy=hierarchy, prepared=folded,
                    max_cycles=max_cycles)


def accuracy_factor(mosaic: SystemStats, reference: SystemStats) -> float:
    """The Figure 5 metric: simulated cycles / measured cycles, with both
    normalized to their clock (the machines may run at different GHz)."""
    return mosaic.runtime_seconds / reference.runtime_seconds
