"""Leveled status output for the harness and CLI.

Human-facing progress ("resuming from cycle N", "retrying point 3",
"trace: -> out.json") goes to **stderr** through this logger, keeping
stdout machine-readable for ``--json`` consumers and shell pipelines.
Three levels, selected by the CLI's ``--quiet``/``--verbose`` flags:

* ``QUIET`` — warnings only (worker deaths, retries, fallbacks);
* ``NORMAL`` — plus one-line progress notes (artifact paths, resume
  hints);
* ``VERBOSE`` — plus chatty per-step detail (per-point sweep progress).

The module-level :data:`STATUS` singleton is what library code uses;
levels are resolved at call time so tests (and the CLI) can flip them
without re-plumbing every call site.
"""

from __future__ import annotations

import sys

__all__ = ["NORMAL", "QUIET", "STATUS", "StatusLogger", "VERBOSE",
           "set_status_level"]

QUIET = 0
NORMAL = 1
VERBOSE = 2


class StatusLogger:
    """Writes leveled status lines to stderr (never stdout)."""

    def __init__(self, level: int = NORMAL):
        self.level = level

    def warn(self, message: str) -> None:
        """Always shown (even under --quiet): something went sideways."""
        self._write(message)

    def info(self, message: str) -> None:
        """Default-level progress note; silenced by --quiet."""
        if self.level >= NORMAL:
            self._write(message)

    def verbose(self, message: str) -> None:
        """Chatty detail; shown only under --verbose."""
        if self.level >= VERBOSE:
            self._write(message)

    @staticmethod
    def _write(message: str) -> None:
        # resolved at call time so pytest's capsys / CLI redirection see
        # every line; flushed so progress interleaves correctly with a
        # child process's own output
        print(message, file=sys.stderr, flush=True)


#: process-wide logger used by harness + CLI status output
STATUS = StatusLogger()


def set_status_level(level: int) -> None:
    """Clamp and apply a status level (the --quiet/--verbose hook)."""
    STATUS.level = max(QUIET, min(VERBOSE, level))
